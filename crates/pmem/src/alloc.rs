//! Crash-consistent NVM allocation (paper GS1, GA3, §5.1(3)).
//!
//! The allocator manages the space of one [`crate::pool::PmemPool`] with a
//! persistent bump cursor plus volatile segregated free lists. It supports
//! two modes:
//!
//! * [`AllocMode::CrashConsistent`] — the PMDK-like mode: the bump cursor is
//!   persisted before memory is handed out, and *malloc-to* allocations go
//!   through a persistent allocation log so that a crash between "allocate"
//!   and "link into the data structure" can never leak persistent memory.
//!   Each allocation/free performs the flush/fence traffic the paper
//!   attributes to PMDK (~6 flushes per alloc/free pair).
//! * [`AllocMode::Transient`] — the modified-jemalloc mode of Figure 3: same
//!   placement logic, no crash-consistency work at all.
//!
//! Free lists are volatile and rebuilt empty on remount; blocks freed before
//! a crash but never reused are reclaimed by an offline reachability sweep
//! (out of scope for the allocator; see DESIGN.md).
//!
//! # Pool layout
//!
//! ```text
//! 0x0000  header: magic, size, mode, persistent bump cursor
//! 0x0100  root directory: 32 persistent 8-byte root slots
//! 0x0400  allocation log: LOG_SLOTS x 32-byte entries
//! 0x10000 data space (bump + free lists)
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::persist;
use crate::pool::{PmemPool, PoolId};
use crate::pptr::PmPtr;
use crate::stats;
use crate::{PmemError, Result};

/// Allocator crash-consistency mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// PMDK-like: persistent cursor, allocation logs, full flush traffic.
    CrashConsistent,
    /// Jemalloc-like: no crash-consistency work (Figure 3's baseline).
    Transient,
}

const MAGIC: u64 = 0x5041_4354_5245_4531; // "PACTREE1"

/// Number of allocation-log slots (one per concurrently allocating thread).
pub const LOG_SLOTS: usize = 1024;

/// Number of persistent root slots in the root directory.
pub const ROOT_SLOTS: usize = 32;

const HDR_MAGIC: u64 = 0;
const HDR_SIZE: u64 = 8;
const HDR_MODE: u64 = 16;
const HDR_BUMP: u64 = 24;
const ROOT_DIR: u64 = 0x100;
const LOG_BASE: u64 = 0x400;
const LOG_ENTRY_SIZE: u64 = 32;
/// First byte of the data space.
pub const DATA_START: u64 = 0x10000;

/// Segregated size classes (bytes). Larger requests are bump-allocated.
const CLASSES: [usize; 10] = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

fn class_of(size: usize) -> Option<usize> {
    CLASSES.iter().position(|&c| size <= c)
}

/// A persistent allocation-log entry (malloc-to semantics, §5.1(3)).
///
/// Protocol: (1) write `dest`+`size`, persist; (2) allocate, write `ptr`,
/// persist; (3) store `ptr` into `*dest`, persist; (4) zero the entry,
/// persist. Recovery frees `ptr` whenever `*dest != ptr`.
#[repr(C)]
struct LogEntry {
    dest: AtomicU64,
    size: AtomicU64,
    ptr: AtomicU64,
    _pad: AtomicU64,
}

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

fn my_slot() -> usize {
    THREAD_SLOT.with(|s| {
        if s.get() == usize::MAX {
            s.set(NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % LOG_SLOTS);
        }
        s.get()
    })
}

/// The allocator for one pool.
pub struct PmemAllocator {
    pool_id: PoolId,
    pool_size: usize,
    mode: AllocMode,
    /// Volatile mirror of the persistent bump cursor.
    bump: AtomicU64,
    /// Per-size-class volatile free lists of offsets.
    freelists: Vec<Mutex<Vec<u64>>>,
    /// Free lists for large (non-class) blocks: (offset, size).
    large_free: Mutex<Vec<(u64, usize)>>,
}

impl PmemAllocator {
    /// Smallest usable pool: header + logs + some data space.
    pub const MIN_POOL_SIZE: usize = 1 << 20;

    pub(crate) fn new(pool_id: PoolId, pool_size: usize, mode: AllocMode) -> Self {
        PmemAllocator {
            pool_id,
            pool_size,
            mode,
            bump: AtomicU64::new(DATA_START),
            freelists: (0..CLASSES.len()).map(|_| Mutex::new(Vec::new())).collect(),
            large_free: Mutex::new(Vec::new()),
        }
    }

    /// Writes a fresh persistent header into a just-created pool.
    pub(crate) fn format(&self, pool: &PmemPool) {
        // SAFETY: header offsets are in bounds of any MIN_POOL_SIZE pool and
        // 8-byte aligned; the pool is freshly zeroed and not yet shared.
        unsafe {
            (pool.at(HDR_MAGIC) as *mut u64).write(MAGIC);
            (pool.at(HDR_SIZE) as *mut u64).write(self.pool_size as u64);
            (pool.at(HDR_MODE) as *mut u64).write(self.mode as u64);
            (pool.at(HDR_BUMP) as *mut u64).write(DATA_START);
        }
        // Persist the header directly: `create` calls this before the pool
        // is registered (and while holding the registry lock), so the global
        // address-based `persist::persist` would neither find the pool nor
        // be safe to call here.
        pool.persist_range(0, DATA_START as usize);
        persist::fence();
    }

    /// Rebuilds volatile state from the persistent header after a remount.
    pub(crate) fn remount(&self, pool: &PmemPool) {
        // SAFETY: header was formatted at create; offsets in bounds, aligned.
        let (magic, bump) = unsafe {
            (
                (pool.at(HDR_MAGIC) as *const u64).read(),
                (pool.at(HDR_BUMP) as *const AtomicU64)
                    .as_ref()
                    .expect("non-null")
                    .load(Ordering::Relaxed),
            )
        };
        assert_eq!(magic, MAGIC, "remounted pool has no valid header");
        self.bump.store(bump.max(DATA_START), Ordering::Release);
        for fl in &self.freelists {
            fl.lock().clear();
        }
        self.large_free.lock().clear();
    }

    /// Pool this allocator serves.
    pub fn pool_id(&self) -> PoolId {
        self.pool_id
    }

    /// Current crash-consistency mode.
    pub fn mode(&self) -> AllocMode {
        self.mode
    }

    /// Bytes of data space ever bump-allocated (high-water mark).
    pub fn high_water(&self) -> u64 {
        self.bump.load(Ordering::Relaxed) - DATA_START
    }

    fn header_bump(&self) -> &AtomicU64 {
        let base = crate::pool::base_of(self.pool_id);
        debug_assert!(!base.is_null());
        // SAFETY: HDR_BUMP is in bounds and 8-byte aligned in every pool.
        unsafe { &*(base.add(HDR_BUMP as usize) as *const AtomicU64) }
    }

    fn log_entry(&self, slot: usize) -> &LogEntry {
        debug_assert!(slot < LOG_SLOTS);
        let base = crate::pool::base_of(self.pool_id);
        debug_assert!(!base.is_null());
        // SAFETY: the log area is in bounds and entries are 8-byte aligned.
        unsafe {
            &*(base.add((LOG_BASE + slot as u64 * LOG_ENTRY_SIZE) as usize) as *const LogEntry)
        }
    }

    /// Returns the persistent root slot `idx` (an 8-byte cell applications
    /// use to store their top-level persistent pointers).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= ROOT_SLOTS`.
    pub fn root(&self, idx: usize) -> &AtomicU64 {
        assert!(idx < ROOT_SLOTS);
        let base = crate::pool::base_of(self.pool_id);
        assert!(!base.is_null(), "pool unregistered");
        // SAFETY: the root directory is in bounds and 8-byte aligned.
        unsafe { &*(base.add((ROOT_DIR + idx as u64 * 8) as usize) as *const AtomicU64) }
    }

    fn bump_alloc(&self, size: usize) -> Result<u64> {
        let size = size.next_multiple_of(8) as u64;
        let off = self.bump.fetch_add(size, Ordering::Relaxed);
        if off + size > self.pool_size as u64 {
            self.bump.fetch_sub(size, Ordering::Relaxed);
            return Err(PmemError::OutOfMemory);
        }
        if self.mode == AllocMode::CrashConsistent {
            // The cursor must be durable before the block is used, otherwise
            // a crash could hand the same bytes out twice.
            let hdr = self.header_bump();
            let new = off + size;
            hdr.fetch_max(new, Ordering::Relaxed);
            persist::persist_obj_fenced(hdr);
        }
        Ok(off)
    }

    /// Allocates `size` bytes (8-byte aligned).
    ///
    /// Prefer [`malloc_to`](Self::malloc_to) when the result will be linked
    /// into a persistent structure — plain `alloc` offers no leak protection
    /// across crashes.
    pub fn alloc(&self, size: usize) -> Result<PmPtr<u8>> {
        if size == 0 {
            return Err(PmemError::InvalidAllocation(size));
        }
        let t0 = Instant::now();
        let off = match class_of(size) {
            Some(cls) => {
                let reused = self.freelists[cls].lock().pop();
                match reused {
                    Some(off) => off,
                    None => self.bump_alloc(CLASSES[cls])?,
                }
            }
            None => {
                let reused = {
                    let mut lf = self.large_free.lock();
                    lf.iter()
                        .position(|&(_, s)| s >= size)
                        .map(|i| lf.swap_remove(i).0)
                };
                match reused {
                    Some(off) => off,
                    None => self.bump_alloc(size)?,
                }
            }
        };
        if self.mode == AllocMode::CrashConsistent {
            // PMDK-style heap-metadata consistency cost: pmemobj_alloc's
            // undo/redo logging performs several flush+fence pairs per
            // allocation (six per alloc/free pair, §GS1).
            let base = crate::pool::base_of(self.pool_id);
            // SAFETY: header line 0 is always in bounds.
            for _ in 0..3 {
                persist::persist(base, 8);
                persist::fence();
            }
        }
        let stats_scope = |s: &stats::PoolStats| {
            let s = s.local();
            s.allocs.fetch_add(1, Ordering::Relaxed);
            s.alloc_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        };
        stats_scope(stats::global());
        stats_scope(crate::pool::stats_of(self.pool_id));
        #[cfg(feature = "trace")]
        crate::trace::on_alloc(self.pool_id, off, size as u64);
        Ok(PmPtr::new(self.pool_id, off))
    }

    /// Crash-consistent allocate-and-link (the paper's *malloc-to*, §5.1(3)
    /// and §5.6): allocates `size` bytes, calls `init` on the uninitialized
    /// block, persists it, then atomically and persistently stores the new
    /// pointer into `*dest`.
    ///
    /// If a crash happens anywhere in between, [`recover_logs`](Self::recover_logs)
    /// frees the block, so persistent memory can never leak.
    pub fn malloc_to(
        &self,
        size: usize,
        dest: &AtomicU64,
        init: impl FnOnce(*mut u8),
    ) -> Result<PmPtr<u8>> {
        let slot = my_slot();
        let entry = self.log_entry(slot);
        let logging = self.mode == AllocMode::CrashConsistent;
        if logging {
            let (dpool, doff) = crate::pool::lookup_addr(dest as *const AtomicU64 as *const u8)
                .ok_or(PmemError::Corruption("malloc_to destination not in a pool"))?;
            entry
                .dest
                .store(PmPtr::<u8>::new(dpool, doff).raw(), Ordering::Relaxed);
            entry.size.store(size as u64, Ordering::Relaxed);
            entry.ptr.store(0, Ordering::Relaxed);
            persist::persist_obj_fenced(entry);
        }
        let ptr = self.alloc(size)?;
        if logging {
            entry.ptr.store(ptr.raw(), Ordering::Relaxed);
            persist::persist_obj_fenced(entry);
        }
        init(ptr.as_mut_ptr());
        persist::persist(ptr.as_ptr(), size);
        persist::fence();
        dest.store(ptr.raw(), Ordering::Release);
        persist::persist_obj_fenced(dest);
        if logging {
            entry.dest.store(0, Ordering::Relaxed);
            entry.ptr.store(0, Ordering::Relaxed);
            persist::persist_obj_fenced(entry);
        }
        Ok(ptr)
    }

    /// Returns `size` bytes at `ptr` to the allocator.
    ///
    /// # Safety contract (not enforced)
    ///
    /// `ptr`/`size` must describe a block previously returned by this
    /// allocator with the same size request.
    pub fn free(&self, ptr: PmPtr<u8>, size: usize) {
        debug_assert_eq!(ptr.pool_id(), self.pool_id);
        debug_assert!(!ptr.is_null());
        let t0 = Instant::now();
        match class_of(size) {
            Some(cls) => self.freelists[cls].lock().push(ptr.offset()),
            None => self.large_free.lock().push((ptr.offset(), size)),
        }
        if self.mode == AllocMode::CrashConsistent {
            // Free-side heap-metadata logging cost.
            let base = crate::pool::base_of(self.pool_id);
            persist::persist(base, 8);
            persist::fence();
            persist::persist(base, 8);
            persist::fence();
        }
        let stats_scope = |s: &stats::PoolStats| {
            let s = s.local();
            s.frees.fetch_add(1, Ordering::Relaxed);
            s.alloc_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        };
        stats_scope(stats::global());
        stats_scope(crate::pool::stats_of(self.pool_id));
        #[cfg(feature = "trace")]
        crate::trace::on_free(self.pool_id, ptr.offset(), size as u64);
    }

    /// Replays pending allocation-log entries after a crash, freeing every
    /// block that was allocated but never linked to its destination.
    ///
    /// Returns the number of orphaned blocks reclaimed.
    pub fn recover_logs(&self) -> usize {
        let mut reclaimed = 0;
        for slot in 0..LOG_SLOTS {
            let entry = self.log_entry(slot);
            let ptr_raw = entry.ptr.load(Ordering::Relaxed);
            let dest_raw = entry.dest.load(Ordering::Relaxed);
            if dest_raw == 0 && ptr_raw == 0 {
                continue;
            }
            if ptr_raw != 0 {
                let ptr = PmPtr::<u8>::from_raw(ptr_raw);
                let dest = PmPtr::<AtomicU64>::from_raw(dest_raw);
                // The destination may live in a *different* pool, and that
                // pool may have been destroyed (or never remounted) by the
                // time recovery runs; dereferencing it would fault. Resolve
                // it defensively and treat an unreachable destination as
                // not-linked, which reclaims the block.
                let linked = dest_cell_resolvable(dest)
                    // SAFETY: resolvable ⇒ the cell is an in-bounds, 8-byte
                    // aligned word of a registered pool; recovery runs
                    // single-threaded after a crash.
                    && unsafe { dest.deref() }.load(Ordering::Relaxed) == ptr_raw;
                if !linked {
                    self.free(ptr, entry.size.load(Ordering::Relaxed) as usize);
                    reclaimed += 1;
                }
            }
            entry.dest.store(0, Ordering::Relaxed);
            entry.ptr.store(0, Ordering::Relaxed);
            entry.size.store(0, Ordering::Relaxed);
            persist::persist_obj(entry);
        }
        persist::fence();
        reclaimed
    }
}

/// Whether a logged `malloc_to` destination can be dereferenced: non-null,
/// its pool is currently registered, and the 8-byte cell is in bounds.
fn dest_cell_resolvable(dest: PmPtr<AtomicU64>) -> bool {
    if dest.is_null() {
        return false;
    }
    if crate::pool::base_of(dest.pool_id()).is_null() {
        return false;
    }
    crate::pool::pool_by_id(dest.pool_id())
        .is_some_and(|p| dest.offset() + 8 <= p.size() as u64 && dest.offset().is_multiple_of(8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PmemPool, PoolConfig};

    #[test]
    fn alloc_free_reuse() {
        let pool = PmemPool::create(PoolConfig::volatile("t-alloc", 1 << 20)).unwrap();
        let a = pool.allocator().alloc(100).unwrap();
        let b = pool.allocator().alloc(100).unwrap();
        assert_ne!(a, b);
        assert!(a.offset() >= DATA_START);
        pool.allocator().free(a, 100);
        let c = pool.allocator().alloc(100).unwrap();
        assert_eq!(a, c, "freed block is reused");
        destroy_pool(pool.id());
    }

    #[test]
    fn distinct_classes_do_not_overlap() {
        let pool = PmemPool::create(PoolConfig::volatile("t-alloc-cls", 1 << 20)).unwrap();
        let mut blocks = Vec::new();
        for &sz in &[1usize, 32, 33, 64, 100, 500, 5000, 20000] {
            blocks.push((pool.allocator().alloc(sz).unwrap().offset(), sz));
        }
        blocks.sort();
        for w in blocks.windows(2) {
            assert!(w[0].0 + w[0].1 as u64 <= w[1].0, "blocks overlap: {w:?}");
        }
        destroy_pool(pool.id());
    }

    #[test]
    fn zero_size_rejected() {
        let pool = PmemPool::create(PoolConfig::volatile("t-alloc-zero", 1 << 20)).unwrap();
        assert!(matches!(
            pool.allocator().alloc(0),
            Err(PmemError::InvalidAllocation(0))
        ));
        destroy_pool(pool.id());
    }

    #[test]
    fn out_of_memory_reported() {
        let pool = PmemPool::create(PoolConfig::volatile("t-alloc-oom", 1 << 20)).unwrap();
        // The pool has ~1 MiB of data space; a 2 MiB request must fail.
        assert!(matches!(
            pool.allocator().alloc(2 << 20),
            Err(PmemError::OutOfMemory)
        ));
        destroy_pool(pool.id());
    }

    #[test]
    fn malloc_to_links_and_survives_crash() {
        let pool = PmemPool::create(PoolConfig::durable("t-mto", 1 << 20)).unwrap();
        let dest = pool.allocator().root(0);
        let p = pool
            .allocator()
            .malloc_to(64, dest, |raw| {
                // SAFETY: 64 freshly allocated bytes.
                unsafe { raw.write_bytes(0x7E, 64) };
            })
            .unwrap();
        assert_eq!(dest.load(Ordering::Relaxed), p.raw());
        pool.simulate_crash(false);
        let linked = PmPtr::<u8>::from_raw(pool.allocator().root(0).load(Ordering::Relaxed));
        assert_eq!(linked, p);
        // SAFETY: block persisted by malloc_to before linking.
        unsafe { assert_eq!(*linked.as_ptr(), 0x7E) };
        assert_eq!(pool.allocator().recover_logs(), 0);
        destroy_pool(pool.id());
    }

    #[test]
    fn recovery_frees_unlinked_block() {
        let pool = PmemPool::create(PoolConfig::durable("t-mto-leak", 1 << 20)).unwrap();
        let alloc = pool.allocator();
        // Simulate the crash window: log written and block allocated, but the
        // destination store never persisted.
        let dest = alloc.root(1);
        let slot = my_slot();
        let entry = alloc.log_entry(slot);
        let (dpool, doff) =
            crate::pool::lookup_addr(dest as *const AtomicU64 as *const u8).unwrap();
        entry
            .dest
            .store(PmPtr::<u8>::new(dpool, doff).raw(), Ordering::Relaxed);
        entry.size.store(64, Ordering::Relaxed);
        let block = alloc.alloc(64).unwrap();
        entry.ptr.store(block.raw(), Ordering::Relaxed);
        persist::persist_obj_fenced(entry);
        pool.simulate_crash(false);

        let freed = alloc.recover_logs();
        assert_eq!(freed, 1, "orphaned block reclaimed");
        // The reclaimed block is reusable.
        let again = alloc.alloc(64).unwrap();
        assert_eq!(again, block);
        destroy_pool(pool.id());
    }

    #[test]
    fn bump_cursor_durable_in_cc_mode() {
        let pool = PmemPool::create(PoolConfig::durable("t-bump", 1 << 20)).unwrap();
        let a = pool.allocator().alloc(64).unwrap();
        pool.simulate_crash(false);
        // After remount the cursor must not hand out `a` again.
        let b = pool.allocator().alloc(64).unwrap();
        assert_ne!(a, b);
        assert!(b.offset() > a.offset());
        destroy_pool(pool.id());
    }

    #[test]
    fn transient_mode_skips_flushes() {
        let pool = PmemPool::create(
            PoolConfig::volatile("t-transient", 1 << 20).with_alloc_mode(AllocMode::Transient),
        )
        .unwrap();
        crate::model::set_config(crate::model::NvmModelConfig::accounting());
        let before = pool.stats().snapshot();
        let _ = pool.allocator().alloc(64).unwrap();
        let d = pool.stats().snapshot().since(&before);
        crate::model::set_config(crate::model::NvmModelConfig::disabled());
        assert_eq!(d.flushes, 0, "transient alloc must not flush");
        destroy_pool(pool.id());
    }
}
