//! PMWatch-equivalent media counters.
//!
//! The paper measures NVM media traffic (e.g. Figures 4 and 5 report "total
//! NVM read (GB)") with Intel PMWatch. Our [`crate::model`] feeds the same
//! kind of counters: media-level reads/writes at XPLine granularity, plus
//! persistence-instruction counts and allocator activity.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing set of media counters.
///
/// One instance exists per pool ([`crate::pool::PmemPool::stats`]) and one
/// global instance aggregates everything ([`global`]).
#[derive(Default, Debug)]
pub struct PoolStats {
    /// Bytes read from the media (XPLine granularity).
    pub media_read_bytes: AtomicU64,
    /// Bytes written to the media (XPLine granularity, after XPBuffer
    /// write combining).
    pub media_write_bytes: AtomicU64,
    /// Directory-coherence bookkeeping writes caused by remote reads.
    pub directory_write_bytes: AtomicU64,
    /// Number of cache-line flush instructions (`clwb` equivalents).
    pub flushes: AtomicU64,
    /// Number of ordering fences (`sfence` equivalents).
    pub fences: AtomicU64,
    /// Allocations served.
    pub allocs: AtomicU64,
    /// Frees served.
    pub frees: AtomicU64,
    /// Nanoseconds spent inside the allocator (for the GA3 experiment).
    pub alloc_ns: AtomicU64,
}

impl PoolStats {
    /// Takes a point-in-time snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            media_read_bytes: self.media_read_bytes.load(Ordering::Relaxed),
            media_write_bytes: self.media_write_bytes.load(Ordering::Relaxed),
            directory_write_bytes: self.directory_write_bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            alloc_ns: self.alloc_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.media_read_bytes.store(0, Ordering::Relaxed);
        self.media_write_bytes.store(0, Ordering::Relaxed);
        self.directory_write_bytes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.alloc_ns.store(0, Ordering::Relaxed);
    }
}

/// An owned copy of the counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    pub directory_write_bytes: u64,
    pub flushes: u64,
    pub fences: u64,
    pub allocs: u64,
    pub frees: u64,
    pub alloc_ns: u64,
}

impl StatsSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            media_read_bytes: self.media_read_bytes.saturating_sub(earlier.media_read_bytes),
            media_write_bytes: self
                .media_write_bytes
                .saturating_sub(earlier.media_write_bytes),
            directory_write_bytes: self
                .directory_write_bytes
                .saturating_sub(earlier.directory_write_bytes),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_ns: self.alloc_ns.saturating_sub(earlier.alloc_ns),
        }
    }

    /// Media reads in GiB.
    pub fn read_gib(&self) -> f64 {
        self.media_read_bytes as f64 / (1u64 << 30) as f64
    }

    /// Media writes (including directory writes) in GiB.
    pub fn write_gib(&self) -> f64 {
        (self.media_write_bytes + self.directory_write_bytes) as f64 / (1u64 << 30) as f64
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read {:.3} GiB, write {:.3} GiB (dir {:.3} GiB), {} flushes, {} fences, {} allocs, {} frees",
            self.read_gib(),
            self.media_write_bytes as f64 / (1u64 << 30) as f64,
            self.directory_write_bytes as f64 / (1u64 << 30) as f64,
            self.flushes,
            self.fences,
            self.allocs,
            self.frees,
        )
    }
}

/// Global counters aggregated across all pools.
pub fn global() -> &'static PoolStats {
    static GLOBAL: PoolStats = PoolStats {
        media_read_bytes: AtomicU64::new(0),
        media_write_bytes: AtomicU64::new(0),
        directory_write_bytes: AtomicU64::new(0),
        flushes: AtomicU64::new(0),
        fences: AtomicU64::new(0),
        allocs: AtomicU64::new(0),
        frees: AtomicU64::new(0),
        alloc_ns: AtomicU64::new(0),
    };
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = PoolStats::default();
        s.media_read_bytes.store(100, Ordering::Relaxed);
        let a = s.snapshot();
        s.media_read_bytes.fetch_add(400, Ordering::Relaxed);
        s.flushes.fetch_add(3, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.media_read_bytes, 400);
        assert_eq!(d.flushes, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
