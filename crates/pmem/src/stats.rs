//! PMWatch-equivalent media counters.
//!
//! The paper measures NVM media traffic (e.g. Figures 4 and 5 report "total
//! NVM read (GB)") with Intel PMWatch. Our [`crate::model`] feeds the same
//! kind of counters: media-level reads/writes at XPLine granularity, plus
//! persistence-instruction counts and allocator activity.
//!
//! Counters are *striped*: a [`PoolStats`] is a bank of cache-line-padded
//! [`StatShard`]s, and each thread increments only its own shard (picked
//! round-robin on first use), so the model's hot path never write-shares a
//! cache line between threads. Readers aggregate with [`PoolStats::snapshot`];
//! all reporting (figure binaries, the YCSB driver) goes through snapshots,
//! so striping is invisible outside this module.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter stripes per [`PoolStats`].
///
/// Threads map onto stripes round-robin, so this only needs to be large
/// enough that concurrently *hot* threads rarely collide; collisions cost
/// cache-line bouncing, not correctness.
pub const STAT_SHARDS: usize = 32;

/// One cache-line-padded stripe of media counters.
///
/// Padded to 128 bytes (two cache lines) so adjacent-stripe writes never
/// false-share, including on CPUs that prefetch line pairs.
#[repr(align(128))]
#[derive(Default, Debug)]
pub struct StatShard {
    /// Bytes read from the media (XPLine granularity).
    pub media_read_bytes: AtomicU64,
    /// Bytes written to the media (XPLine granularity, after XPBuffer
    /// write combining).
    pub media_write_bytes: AtomicU64,
    /// Directory-coherence bookkeeping writes caused by remote reads.
    pub directory_write_bytes: AtomicU64,
    /// Number of cache-line flush instructions (`clwb` equivalents).
    pub flushes: AtomicU64,
    /// Number of ordering fences (`sfence` equivalents).
    pub fences: AtomicU64,
    /// Allocations served.
    pub allocs: AtomicU64,
    /// Frees served.
    pub frees: AtomicU64,
    /// Nanoseconds spent inside the allocator (for the GA3 experiment).
    pub alloc_ns: AtomicU64,
    /// Flush/dirty accesses absorbed by the XPBuffer (write combining hit).
    pub xpbuffer_hits: AtomicU64,
    /// Flush/dirty accesses that evicted or installed a new XPBuffer line
    /// (and therefore cost media traffic).
    pub xpbuffer_misses: AtomicU64,
    /// Nanoseconds spent stalled in the bandwidth token bucket's slow path.
    pub throttle_stall_ns: AtomicU64,
}

impl StatShard {
    const fn new() -> Self {
        StatShard {
            media_read_bytes: AtomicU64::new(0),
            media_write_bytes: AtomicU64::new(0),
            directory_write_bytes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            fences: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            alloc_ns: AtomicU64::new(0),
            xpbuffer_hits: AtomicU64::new(0),
            xpbuffer_misses: AtomicU64::new(0),
            throttle_stall_ns: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        self.media_read_bytes.store(0, Ordering::Relaxed);
        self.media_write_bytes.store(0, Ordering::Relaxed);
        self.directory_write_bytes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.alloc_ns.store(0, Ordering::Relaxed);
        self.xpbuffer_hits.store(0, Ordering::Relaxed);
        self.xpbuffer_misses.store(0, Ordering::Relaxed);
        self.throttle_stall_ns.store(0, Ordering::Relaxed);
    }
}

/// Stripe index of the calling thread.
///
/// Assigned round-robin from a global counter the first time a thread
/// touches any counter, then cached in TLS: the steady state is one plain
/// TLS read.
#[inline]
fn my_shard() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % STAT_SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// A monotonically increasing, striped set of media counters.
///
/// One instance exists per pool slot ([`crate::pool::stats_of`]) and one
/// global instance aggregates everything ([`global`]).
#[derive(Default, Debug)]
pub struct PoolStats {
    shards: [StatShard; STAT_SHARDS],
}

impl PoolStats {
    /// A zeroed counter bank, const so it can live in statics.
    pub const fn new() -> Self {
        PoolStats {
            shards: [const { StatShard::new() }; STAT_SHARDS],
        }
    }

    /// The calling thread's stripe; increment counters through this.
    #[inline]
    pub fn local(&self) -> &StatShard {
        &self.shards[my_shard()]
    }

    /// Takes a point-in-time snapshot (sums all stripes).
    ///
    /// Counters are monotonic between [`reset`](Self::reset)s, so a snapshot
    /// taken concurrently with writers is a consistent lower bound per field.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for shard in &self.shards {
            s.media_read_bytes += shard.media_read_bytes.load(Ordering::Relaxed);
            s.media_write_bytes += shard.media_write_bytes.load(Ordering::Relaxed);
            s.directory_write_bytes += shard.directory_write_bytes.load(Ordering::Relaxed);
            s.flushes += shard.flushes.load(Ordering::Relaxed);
            s.fences += shard.fences.load(Ordering::Relaxed);
            s.allocs += shard.allocs.load(Ordering::Relaxed);
            s.frees += shard.frees.load(Ordering::Relaxed);
            s.alloc_ns += shard.alloc_ns.load(Ordering::Relaxed);
            s.xpbuffer_hits += shard.xpbuffer_hits.load(Ordering::Relaxed);
            s.xpbuffer_misses += shard.xpbuffer_misses.load(Ordering::Relaxed);
            s.throttle_stall_ns += shard.throttle_stall_ns.load(Ordering::Relaxed);
        }
        s
    }

    /// Resets every counter to zero (not atomic with concurrent writers,
    /// same as the pre-striping behaviour — reset between measurement runs).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.reset();
        }
    }
}

/// An owned copy of the counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    pub directory_write_bytes: u64,
    pub flushes: u64,
    pub fences: u64,
    pub allocs: u64,
    pub frees: u64,
    pub alloc_ns: u64,
    pub xpbuffer_hits: u64,
    pub xpbuffer_misses: u64,
    pub throttle_stall_ns: u64,
}

impl StatsSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            media_read_bytes: self
                .media_read_bytes
                .saturating_sub(earlier.media_read_bytes),
            media_write_bytes: self
                .media_write_bytes
                .saturating_sub(earlier.media_write_bytes),
            directory_write_bytes: self
                .directory_write_bytes
                .saturating_sub(earlier.directory_write_bytes),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_ns: self.alloc_ns.saturating_sub(earlier.alloc_ns),
            xpbuffer_hits: self.xpbuffer_hits.saturating_sub(earlier.xpbuffer_hits),
            xpbuffer_misses: self.xpbuffer_misses.saturating_sub(earlier.xpbuffer_misses),
            throttle_stall_ns: self
                .throttle_stall_ns
                .saturating_sub(earlier.throttle_stall_ns),
        }
    }

    /// Fraction of flush/dirty accesses absorbed by the XPBuffer, or 0
    /// before any traffic.
    pub fn xpbuffer_hit_rate(&self) -> f64 {
        let total = self.xpbuffer_hits + self.xpbuffer_misses;
        if total == 0 {
            0.0
        } else {
            self.xpbuffer_hits as f64 / total as f64
        }
    }

    /// Media reads in GiB.
    pub fn read_gib(&self) -> f64 {
        self.media_read_bytes as f64 / (1u64 << 30) as f64
    }

    /// Media writes (including directory writes) in GiB.
    pub fn write_gib(&self) -> f64 {
        (self.media_write_bytes + self.directory_write_bytes) as f64 / (1u64 << 30) as f64
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read {:.3} GiB, write {:.3} GiB (dir {:.3} GiB), {} flushes, {} fences, {} allocs, {} frees",
            self.read_gib(),
            self.media_write_bytes as f64 / (1u64 << 30) as f64,
            self.directory_write_bytes as f64 / (1u64 << 30) as f64,
            self.flushes,
            self.fences,
            self.allocs,
            self.frees,
        )
    }
}

/// Global counters aggregated across all pools.
pub fn global() -> &'static PoolStats {
    static GLOBAL: PoolStats = PoolStats::new();
    &GLOBAL
}

/// Registers the substrate's pipeline gauges with the global
/// [`obsv::registry`]: XPBuffer hit rate (write-combining effectiveness)
/// and token-bucket stall time (bandwidth throttling), plus the raw media
/// counters behind them. Idempotent per returned guard set — hold the
/// `Registration`s for as long as the gauges should be visible.
pub fn install_obsv_gauges() -> Vec<obsv::Registration> {
    let reg = obsv::registry::global();
    let snap = || global().snapshot();
    vec![
        reg.register_gauge("pmem.xpbuffer.hit_rate", move || {
            Some(snap().xpbuffer_hit_rate())
        }),
        reg.register_gauge("pmem.xpbuffer.hits", move || {
            Some(snap().xpbuffer_hits as f64)
        }),
        reg.register_gauge("pmem.xpbuffer.misses", move || {
            Some(snap().xpbuffer_misses as f64)
        }),
        reg.register_gauge("pmem.throttle.stall_ns", move || {
            Some(snap().throttle_stall_ns as f64)
        }),
        reg.register_gauge("pmem.media.read_bytes", move || {
            Some(snap().media_read_bytes as f64)
        }),
        reg.register_gauge("pmem.media.write_bytes", move || {
            Some(snap().media_write_bytes as f64)
        }),
        reg.register_gauge("pmem.flushes", move || Some(snap().flushes as f64)),
        reg.register_gauge("pmem.fences", move || Some(snap().fences as f64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = PoolStats::new();
        s.local().media_read_bytes.store(100, Ordering::Relaxed);
        let a = s.snapshot();
        s.local().media_read_bytes.fetch_add(400, Ordering::Relaxed);
        s.local().flushes.fetch_add(3, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.media_read_bytes, 400);
        assert_eq!(d.flushes, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn stripes_aggregate_across_threads() {
        let s = PoolStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.local().flushes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().flushes, 8000);
    }

    #[test]
    fn shard_is_padded() {
        assert!(std::mem::size_of::<StatShard>() >= 128);
        assert_eq!(std::mem::align_of::<StatShard>(), 128);
    }
}
