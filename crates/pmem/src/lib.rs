//! Emulated persistent-memory (NVM) substrate for the PACTree reproduction.
//!
//! Real PACTree runs on Intel Optane DCPMM exposed through DAX `mmap`. This
//! crate provides the closest synthetic equivalent that exercises the same
//! code paths:
//!
//! * [`pool`] — persistent memory *pools*: large, stable-address regions that
//!   optionally keep a second "media" image so that a simulated crash can
//!   discard everything that was never explicitly persisted.
//! * [`pptr`] — compact persistent pointers (16-bit pool id + 48-bit offset),
//!   mirroring PACTree §5.8.
//! * [`persist`] — `clwb`/`sfence` equivalents. In crash-simulation mode a
//!   flush copies the affected cache lines into the media image; in fast mode
//!   it only feeds the performance model.
//! * [`model`] — an Optane performance model: XPLine-granular media
//!   accounting with an XPBuffer write-combining simulation, per-NUMA
//!   bandwidth throttling, latency injection, and directory-vs-snoop cache
//!   coherence accounting.
//! * [`stats`] — PMWatch-equivalent media counters.
//! * [`alloc`] — a crash-consistent NVM allocator with *malloc-to* semantics
//!   and allocation logs for persistent-leak freedom (PACTree §5.1(3)).
//! * [`numa`] — a logical NUMA topology: threads carry a node id, pools
//!   belong to a node, and cross-node access is charged remote cost.
//! * [`epoch`] — epoch-based memory reclamation with the two-epoch rule that
//!   PACTree §5.6 relies on for safely freeing merged data nodes.
//! * [`crash`] — the crash-injection and remount harness used by recovery
//!   tests (PACTree §6.8).
//!
//! # Example
//!
//! ```
//! use pmem::pool::{PoolConfig, PmemPool};
//!
//! let pool = PmemPool::create(PoolConfig::volatile("example", 1 << 20)).unwrap();
//! let pptr = pool.allocator().alloc(64).unwrap();
//! let raw: *mut u8 = pptr.as_mut_ptr();
//! // SAFETY: `raw` points to 64 freshly allocated bytes inside the pool.
//! unsafe { raw.write_bytes(0xAB, 64) };
//! pmem::persist::persist(raw, 64);
//! pmem::persist::fence();
//! ```

pub mod alloc;
pub mod crash;
pub mod epoch;
pub mod model;
pub mod numa;
pub mod persist;
pub mod pool;
pub mod pptr;
pub mod stats;
#[cfg(feature = "trace")]
pub mod trace;

pub use alloc::{AllocMode, PmemAllocator};
pub use model::{CoherenceMode, NvmModelConfig};
pub use pool::{PmemPool, PoolConfig, PoolId};
pub use pptr::PmPtr;

/// Size of a CPU cache line in bytes; the unit of persistence in ADR mode.
pub const CACHE_LINE: usize = 64;

/// Size of an Optane XPLine in bytes; the media access granularity.
pub const XPLINE: usize = 256;

/// Errors produced by the persistent-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// The pool is out of space.
    OutOfMemory,
    /// A pool with the requested id or name already exists.
    PoolExists(String),
    /// The requested pool was not found in the registry.
    PoolNotFound(String),
    /// The pool registry is full (more than `MAX_POOLS` pools).
    TooManyPools,
    /// An allocation request was invalid (zero size or over the large-object limit).
    InvalidAllocation(usize),
    /// Recovery found a corrupted or impossible persistent state.
    Corruption(&'static str),
}

impl std::fmt::Display for PmemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmemError::OutOfMemory => write!(f, "persistent pool out of memory"),
            PmemError::PoolExists(name) => write!(f, "pool `{name}` already exists"),
            PmemError::PoolNotFound(name) => write!(f, "pool `{name}` not found"),
            PmemError::TooManyPools => write!(f, "pool registry is full"),
            PmemError::InvalidAllocation(sz) => write!(f, "invalid allocation size {sz}"),
            PmemError::Corruption(what) => write!(f, "persistent state corruption: {what}"),
        }
    }
}

impl std::error::Error for PmemError {}

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, PmemError>;
