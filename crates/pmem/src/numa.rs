//! Logical NUMA topology.
//!
//! The paper's machine has two sockets; cross-socket NVM access suffers a
//! bandwidth meltdown under the directory coherence protocol (FH5) and
//! NUMA-local allocation is a first-class design rule (GS2). We model NUMA
//! logically: every thread carries a node id (set with [`pin_thread`]) and
//! every pool belongs to a node; the [`crate::model`] charges remote cost to
//! accesses that cross node ids.

use std::cell::Cell;
use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};

/// Maximum number of logical NUMA nodes.
pub const MAX_NODES: usize = 8;

static TOPOLOGY_NODES: AtomicU16 = AtomicU16::new(2);
static NEXT_RR: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT_NODE: Cell<u16> = const { Cell::new(0) };
}

/// Sets the number of logical NUMA nodes in the emulated machine.
///
/// # Panics
///
/// Panics if `nodes` is zero or exceeds [`MAX_NODES`].
pub fn set_topology(nodes: u16) {
    assert!(nodes >= 1 && (nodes as usize) <= MAX_NODES);
    TOPOLOGY_NODES.store(nodes, Ordering::Release);
}

/// Number of logical NUMA nodes.
pub fn nodes() -> u16 {
    TOPOLOGY_NODES.load(Ordering::Acquire)
}

/// Pins the calling thread to a logical node.
pub fn pin_thread(node: u16) {
    CURRENT_NODE.with(|c| c.set(node % nodes()));
}

/// Pins the calling thread round-robin across the topology and returns the
/// chosen node. Worker pools use this to spread threads like `numactl -i`.
pub fn pin_thread_round_robin() -> u16 {
    let node = (NEXT_RR.fetch_add(1, Ordering::Relaxed) % nodes() as usize) as u16;
    pin_thread(node);
    node
}

/// The calling thread's logical node.
///
/// A single thread-local `Cell` read — the model's hot path calls this on
/// every access, so it must stay lock-free and syscall-free.
#[inline]
pub fn current_node() -> u16 {
    CURRENT_NODE.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_query() {
        set_topology(4);
        pin_thread(3);
        assert_eq!(current_node(), 3);
        pin_thread(9); // wraps
        assert_eq!(current_node(), 1);
        set_topology(2);
    }

    #[test]
    fn round_robin_spreads() {
        set_topology(2);
        let mut seen = [false; 2];
        for _ in 0..4 {
            let handle = std::thread::spawn(pin_thread_round_robin);
            seen[handle.join().unwrap() as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
