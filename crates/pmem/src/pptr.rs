//! Compact persistent pointers (PACTree §5.8).
//!
//! A [`PmPtr`] packs a 16-bit pool id and a 48-bit pool offset into one
//! 8-byte word, so it can be stored in NVM, updated with a single atomic
//! store, and resolved to a raw address after remounting pools at different
//! virtual addresses.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::pool::{self, PoolId};

const OFFSET_BITS: u32 = 48;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// A position-independent pointer into a registered pool.
///
/// The all-zero representation is the null pointer (pool 0 never hands out
/// offset 0 — it is occupied by the pool header).
pub struct PmPtr<T> {
    raw: u64,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for PmPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PmPtr<T> {}

impl<T> PartialEq for PmPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for PmPtr<T> {}

impl<T> std::hash::Hash for PmPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T> std::fmt::Debug for PmPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "PmPtr(null)")
        } else {
            write!(
                f,
                "PmPtr(pool={}, off={:#x})",
                self.pool_id(),
                self.offset()
            )
        }
    }
}

// SAFETY: A `PmPtr` is just a pool id + offset; it confers no access by
// itself (all dereferences are `unsafe` or go through typed wrappers), so
// sending/sharing it across threads is sound.
unsafe impl<T> Send for PmPtr<T> {}
// SAFETY: See above.
unsafe impl<T> Sync for PmPtr<T> {}

impl<T> PmPtr<T> {
    /// The null persistent pointer.
    pub const NULL: PmPtr<T> = PmPtr {
        raw: 0,
        _marker: PhantomData,
    };

    /// Builds a pointer from a pool id and byte offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in 48 bits.
    #[inline]
    pub fn new(pool: PoolId, offset: u64) -> Self {
        assert!(offset <= OFFSET_MASK, "offset exceeds 48 bits");
        PmPtr {
            raw: ((pool as u64) << OFFSET_BITS) | offset,
            _marker: PhantomData,
        }
    }

    /// Reconstructs a pointer from its raw 8-byte representation.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        PmPtr {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw 8-byte representation (what gets stored in NVM).
    #[inline]
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.raw == 0
    }

    /// The pool id component.
    #[inline]
    pub fn pool_id(self) -> PoolId {
        (self.raw >> OFFSET_BITS) as PoolId
    }

    /// The offset component.
    #[inline]
    pub fn offset(self) -> u64 {
        self.raw & OFFSET_MASK
    }

    /// Resolves to a raw mutable pointer via the global base-address table.
    ///
    /// Returns a dangling-but-null pointer for [`PmPtr::NULL`]; callers must
    /// check [`is_null`](Self::is_null) first.
    #[inline]
    pub fn as_mut_ptr(self) -> *mut T {
        if self.is_null() {
            return std::ptr::null_mut();
        }
        let base = pool::base_of(self.pool_id());
        debug_assert!(!base.is_null(), "dangling PmPtr into unregistered pool");
        // SAFETY: offset was produced by the pool's allocator, hence in
        // bounds of the registered region.
        unsafe { base.add(self.offset() as usize) as *mut T }
    }

    /// Resolves to a raw const pointer.
    #[inline]
    pub fn as_ptr(self) -> *const T {
        self.as_mut_ptr() as *const T
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointee must be a live, initialized `T` inside a registered pool,
    /// and the caller must uphold Rust aliasing rules for the returned
    /// reference's lifetime.
    #[inline]
    pub unsafe fn deref<'a>(self) -> &'a T {
        debug_assert!(!self.is_null());
        // SAFETY: Guaranteed by the caller.
        unsafe { &*self.as_ptr() }
    }

    /// Mutably dereferences the pointer.
    ///
    /// # Safety
    ///
    /// Same as [`deref`](Self::deref), plus exclusivity of the returned
    /// reference.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn deref_mut<'a>(self) -> &'a mut T {
        debug_assert!(!self.is_null());
        // SAFETY: Guaranteed by the caller.
        unsafe { &mut *self.as_mut_ptr() }
    }

    /// Reinterprets the pointee type.
    #[inline]
    pub fn cast<U>(self) -> PmPtr<U> {
        PmPtr::from_raw(self.raw)
    }

    /// Byte-offset arithmetic within the same pool.
    ///
    /// # Panics
    ///
    /// Panics if the result leaves the 48-bit offset space.
    #[inline]
    pub fn byte_add(self, bytes: u64) -> PmPtr<T> {
        PmPtr::new(self.pool_id(), self.offset() + bytes)
    }
}

/// An 8-byte atomic cell holding a [`PmPtr`], suitable for placement in NVM.
///
/// Stores/loads are single atomic word operations, making an update a valid
/// linearization point in the paper's crash-consistency protocols.
#[repr(transparent)]
pub struct AtomicPmPtr<T> {
    cell: AtomicU64,
    _marker: PhantomData<*mut T>,
}

// SAFETY: Same reasoning as `PmPtr`; the atomic cell adds synchronization.
unsafe impl<T> Send for AtomicPmPtr<T> {}
// SAFETY: See above.
unsafe impl<T> Sync for AtomicPmPtr<T> {}

impl<T> AtomicPmPtr<T> {
    /// Creates a cell holding null.
    pub const fn null() -> Self {
        AtomicPmPtr {
            cell: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }

    /// Creates a cell holding `ptr`.
    pub fn new(ptr: PmPtr<T>) -> Self {
        AtomicPmPtr {
            cell: AtomicU64::new(ptr.raw()),
            _marker: PhantomData,
        }
    }

    /// Atomically loads the pointer.
    #[inline]
    pub fn load(&self, order: Ordering) -> PmPtr<T> {
        PmPtr::from_raw(self.cell.load(order))
    }

    /// Atomically stores the pointer.
    #[inline]
    pub fn store(&self, ptr: PmPtr<T>, order: Ordering) {
        self.cell.store(ptr.raw(), order);
    }

    /// Atomic compare-exchange on the pointer value.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: PmPtr<T>,
        new: PmPtr<T>,
        success: Ordering,
        failure: Ordering,
    ) -> std::result::Result<PmPtr<T>, PmPtr<T>> {
        self.cell
            .compare_exchange(current.raw(), new.raw(), success, failure)
            .map(PmPtr::from_raw)
            .map_err(PmPtr::from_raw)
    }
}

impl<T> Default for AtomicPmPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PmemPool, PoolConfig};

    #[test]
    fn pack_unpack_roundtrip() {
        let p = PmPtr::<u64>::new(42, 0x1234_5678_9ABC);
        assert_eq!(p.pool_id(), 42);
        assert_eq!(p.offset(), 0x1234_5678_9ABC);
        assert_eq!(PmPtr::<u64>::from_raw(p.raw()), p);
        assert!(!p.is_null());
        assert!(PmPtr::<u64>::NULL.is_null());
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn offset_overflow_panics() {
        let _ = PmPtr::<u8>::new(0, 1 << 48);
    }

    #[test]
    fn resolves_through_registry() {
        let pool = PmemPool::create(PoolConfig::volatile("t-pptr", 1 << 20)).unwrap();
        let pp = pool.allocator().alloc(8).unwrap().cast::<u64>();
        // SAFETY: freshly allocated, 8-byte aligned, in-bounds.
        unsafe { pp.as_mut_ptr().write(77) };
        assert_eq!(unsafe { *pp.deref() }, 77);
        assert_eq!(pp.pool_id(), pool.id());
        destroy_pool(pool.id());
    }

    #[test]
    fn atomic_cell_cas() {
        let a = AtomicPmPtr::<u8>::null();
        let p = PmPtr::new(1, 64);
        assert!(a
            .compare_exchange(PmPtr::NULL, p, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());
        assert_eq!(a.load(Ordering::Acquire), p);
        assert!(a
            .compare_exchange(PmPtr::NULL, p, Ordering::AcqRel, Ordering::Acquire)
            .is_err());
    }
}
