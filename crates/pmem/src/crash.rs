//! Crash-injection harness (paper §6.8).
//!
//! The paper validates recovery by killing the process 100 times and
//! checking that every previously written key survives. We cannot `SIGKILL`
//! a thread mid-operation and keep the test process alive, so we simulate at
//! the persistence layer instead: a *crash point* discards every byte that
//! was never explicitly persisted (see [`crate::pool::PmemPool::simulate_crash`]),
//! which is exactly what an ADR-mode power failure does to CPU caches.
//!
//! Two ingredients make the simulated crash adversarial:
//!
//! * [`CrashScheduler`] — a countdown that triggers a simulated crash after
//!   a randomized number of persist operations, so crashes land *inside*
//!   multi-step protocols (split, merge, malloc-to), not just between ops.
//! * random cache evictions — [`evict_random_lines`] persists arbitrary
//!   cache lines the program never flushed, modelling spontaneous cache
//!   writebacks that real hardware performs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rand::Rng;

use crate::pool::PmemPool;

/// A countdown-based crash trigger.
///
/// Register it with `arm`, then call [`tick`](Self::tick) at interesting
/// instants (the PACTree test-suite ticks on every persist). When the
/// countdown hits zero the scheduler flips to *tripped* and the harness
/// performs the actual pool crash at a safe join point.
#[derive(Debug, Default)]
pub struct CrashScheduler {
    countdown: AtomicU64,
    armed: AtomicBool,
    tripped: AtomicBool,
}

impl CrashScheduler {
    /// Creates a disarmed scheduler.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms the scheduler to trip after `after_ticks` ticks.
    pub fn arm(&self, after_ticks: u64) {
        self.countdown.store(after_ticks, Ordering::SeqCst);
        self.tripped.store(false, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarms without tripping.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Advances the countdown; returns true exactly once when it fires.
    pub fn tick(&self) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        let prev = self.countdown.fetch_sub(1, Ordering::SeqCst);
        if prev == 1 {
            self.armed.store(false, Ordering::SeqCst);
            self.tripped.store(true, Ordering::SeqCst);
            return true;
        }
        if prev == 0 {
            // Raced past zero; restore and report not-fired.
            self.countdown.store(0, Ordering::SeqCst);
        }
        false
    }

    /// Whether the scheduler has fired since the last arm.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }
}

/// Persists `count` random cache lines of the pool, simulating spontaneous
/// CPU cache evictions before a crash.
pub fn evict_random_lines(pool: &PmemPool, count: usize, rng: &mut impl Rng) {
    let lines = pool.size() / crate::CACHE_LINE;
    for _ in 0..count {
        let line = rng.gen_range(0..lines) as u64;
        pool.evict_line(line * crate::CACHE_LINE as u64);
    }
}

/// Crashes a set of pools together (a whole-machine power failure) and
/// remounts them, optionally at moved base addresses.
pub fn crash_all(pools: &[Arc<PmemPool>], move_base: bool) {
    for p in pools {
        p.simulate_crash(move_base);
    }
    for p in pools {
        p.allocator().recover_logs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PoolConfig};
    use rand::SeedableRng;

    #[test]
    fn scheduler_fires_once() {
        let s = CrashScheduler::new();
        s.arm(3);
        assert!(!s.tick());
        assert!(!s.tick());
        assert!(s.tick());
        assert!(s.tripped());
        assert!(!s.tick(), "fires exactly once");
    }

    #[test]
    fn disarm_prevents_fire() {
        let s = CrashScheduler::new();
        s.arm(2);
        s.disarm();
        assert!(!s.tick());
        assert!(!s.tick());
        assert!(!s.tripped());
    }

    #[test]
    fn random_evictions_persist_data() {
        let pool = PmemPool::create(PoolConfig::durable("t-evict-rand", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        // SAFETY: freshly allocated 64 bytes.
        unsafe { pool.at(off).write_bytes(0x99, 64) };
        // Evict every line; the written one must reach media.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        evict_random_lines(&pool, pool.size() / crate::CACHE_LINE * 4, &mut rng);
        pool.simulate_crash(false);
        // SAFETY: offset in bounds after remount.
        unsafe { assert_eq!(*pool.at(off), 0x99) };
        destroy_pool(pool.id());
    }

    #[test]
    fn crash_all_recovers_logs() {
        let p1 = PmemPool::create(PoolConfig::durable("t-ca-1", 1 << 20)).unwrap();
        let p2 = PmemPool::create(PoolConfig::durable("t-ca-2", 1 << 20)).unwrap();
        crash_all(&[p1.clone(), p2.clone()], false);
        assert_eq!(p1.crash_count(), 1);
        assert_eq!(p2.crash_count(), 1);
        destroy_pool(p1.id());
        destroy_pool(p2.id());
    }
}
