//! Crash-injection harness (paper §6.8).
//!
//! The paper validates recovery by killing the process 100 times and
//! checking that every previously written key survives. We cannot `SIGKILL`
//! a thread mid-operation and keep the test process alive, so we simulate at
//! the persistence layer instead: a *crash point* discards every byte that
//! was never explicitly persisted (see [`crate::pool::PmemPool::simulate_crash`]),
//! which is exactly what an ADR-mode power failure does to CPU caches.
//!
//! Two ingredients make the simulated crash adversarial:
//!
//! * [`CrashScheduler`] — a countdown that triggers a simulated crash after
//!   a randomized number of persist operations, so crashes land *inside*
//!   multi-step protocols (split, merge, malloc-to), not just between ops.
//! * random cache evictions — [`evict_random_lines`] persists arbitrary
//!   cache lines the program never flushed, modelling spontaneous cache
//!   writebacks that real hardware performs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rand::Rng;

use crate::pool::PmemPool;

/// A countdown-based crash trigger.
///
/// Register it with `arm`, then call [`tick`](Self::tick) at interesting
/// instants (the PACTree test-suite ticks on every persist). When the
/// countdown hits zero the scheduler flips to *tripped* and the harness
/// performs the actual pool crash at a safe join point.
#[derive(Debug, Default)]
pub struct CrashScheduler {
    countdown: AtomicU64,
    armed: AtomicBool,
    tripped: AtomicBool,
}

impl CrashScheduler {
    /// Creates a disarmed scheduler.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms the scheduler to trip after `after_ticks` ticks.
    pub fn arm(&self, after_ticks: u64) {
        self.countdown.store(after_ticks, Ordering::SeqCst);
        self.tripped.store(false, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarms without tripping.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Advances the countdown; returns true exactly once when it fires.
    pub fn tick(&self) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        let prev = self.countdown.fetch_sub(1, Ordering::SeqCst);
        if prev == 1 {
            self.armed.store(false, Ordering::SeqCst);
            self.tripped.store(true, Ordering::SeqCst);
            return true;
        }
        if prev == 0 {
            // Raced past zero; restore and report not-fired.
            self.countdown.store(0, Ordering::SeqCst);
        }
        false
    }

    /// Whether the scheduler has fired since the last arm.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }
}

/// Persists `count` random cache lines of the pool, simulating spontaneous
/// CPU cache evictions before a crash.
pub fn evict_random_lines(pool: &PmemPool, count: usize, rng: &mut impl Rng) {
    let lines = pool.size() / crate::CACHE_LINE;
    for _ in 0..count {
        let line = rng.gen_range(0..lines) as u64;
        pool.evict_line(line * crate::CACHE_LINE as u64);
    }
}

/// Crashes a set of pools together (a whole-machine power failure) and
/// remounts them, optionally at moved base addresses.
///
/// Ordering matters: *every* pool is crashed and remounted before *any*
/// pool's allocation logs are replayed. A pool's log replay dereferences
/// cross-pool `PmPtr` destinations (see `PmemAllocator::malloc_to`), so
/// recovering pool 1 before pool 2 has remounted would let pool 1's
/// recovery observe pool 2's pre-crash volatile image — e.g. a destination
/// cell that looks linked even though the link never reached media — and
/// wrongly keep an orphaned block. After a real power failure no such state
/// exists anywhere; the two-phase order reproduces that. The
/// `cross_pool_orphan_reclaimed_after_crash_all` test locks this in, and
/// `recover_logs` itself tolerates destinations whose pool is gone entirely.
pub fn crash_all(pools: &[Arc<PmemPool>], move_base: bool) {
    for p in pools {
        p.simulate_crash(move_base);
    }
    for p in pools {
        p.allocator().recover_logs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PoolConfig};
    use rand::SeedableRng;

    #[test]
    fn scheduler_fires_once() {
        let s = CrashScheduler::new();
        s.arm(3);
        assert!(!s.tick());
        assert!(!s.tick());
        assert!(s.tick());
        assert!(s.tripped());
        assert!(!s.tick(), "fires exactly once");
    }

    #[test]
    fn disarm_prevents_fire() {
        let s = CrashScheduler::new();
        s.arm(2);
        s.disarm();
        assert!(!s.tick());
        assert!(!s.tick());
        assert!(!s.tripped());
    }

    #[test]
    fn random_evictions_persist_data() {
        let pool = PmemPool::create(PoolConfig::durable("t-evict-rand", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        // SAFETY: freshly allocated 64 bytes.
        unsafe { pool.at(off).write_bytes(0x99, 64) };
        // Evict every line; the written one must reach media.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        evict_random_lines(&pool, pool.size() / crate::CACHE_LINE * 4, &mut rng);
        pool.simulate_crash(false);
        // SAFETY: offset in bounds after remount.
        unsafe { assert_eq!(*pool.at(off), 0x99) };
        destroy_pool(pool.id());
    }

    /// Byte offset of allocation-log slot `slot` (layout documented in
    /// `crate::alloc`: log base 0x400, 32-byte entries `dest,size,ptr,pad`).
    fn log_entry_off(slot: u64) -> u64 {
        0x400 + slot * 32
    }

    /// Plants a mid-`malloc_to` log entry in `pool`'s media: block allocated
    /// and logged, destination not yet durably linked.
    fn plant_pending_log(pool: &PmemPool, slot: u64, dest_raw: u64, ptr_raw: u64, size: u64) {
        let off = log_entry_off(slot);
        // SAFETY: the log area is in bounds of every pool and 8-byte aligned.
        unsafe {
            (pool.at(off) as *mut u64).write(dest_raw);
            (pool.at(off + 8) as *mut u64).write(size);
            (pool.at(off + 16) as *mut u64).write(ptr_raw);
        }
        pool.persist_range(off, 32);
    }

    /// Regression: `crash_all` must remount *every* pool before *any* log
    /// replay runs. Pool A's pending log points at a destination cell in
    /// pool B that is linked only in B's volatile image; if A's recovery ran
    /// before B's remount it would read the stale link and leak the block.
    #[test]
    fn cross_pool_orphan_reclaimed_after_crash_all() {
        use crate::pptr::PmPtr;
        let a = PmemPool::create(PoolConfig::durable("t-ca-cross-a", 1 << 20)).unwrap();
        let b = PmemPool::create(PoolConfig::durable("t-ca-cross-b", 1 << 20)).unwrap();
        let block = a.allocator().alloc(64).unwrap();
        let dest = b.allocator().root(0);
        let doff = b
            .offset_of(dest as *const std::sync::atomic::AtomicU64 as *const u8)
            .unwrap();
        plant_pending_log(&a, 0, PmPtr::<u8>::new(b.id(), doff).raw(), block.raw(), 64);
        // Volatile-only link: never persisted, so it must not survive.
        dest.store(block.raw(), std::sync::atomic::Ordering::Relaxed);

        crash_all(&[a.clone(), b.clone()], false);

        assert_eq!(
            dest.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "unpersisted link must be lost"
        );
        let again = a.allocator().alloc(64).unwrap();
        assert_eq!(again, block, "orphaned block was reclaimed and reused");
        destroy_pool(a.id());
        destroy_pool(b.id());
    }

    /// Regression: log replay must tolerate a destination whose pool has
    /// been destroyed (dangling cross-pool `PmPtr`) instead of faulting.
    #[test]
    fn recover_logs_tolerates_dangling_dest_pool() {
        use crate::pptr::PmPtr;
        let a = PmemPool::create(PoolConfig::durable("t-ca-dang-a", 1 << 20)).unwrap();
        let b = PmemPool::create(PoolConfig::durable("t-ca-dang-b", 1 << 20)).unwrap();
        let block = a.allocator().alloc(64).unwrap();
        let dest = b.allocator().root(0);
        let doff = b
            .offset_of(dest as *const std::sync::atomic::AtomicU64 as *const u8)
            .unwrap();
        plant_pending_log(&a, 1, PmPtr::<u8>::new(b.id(), doff).raw(), block.raw(), 64);
        destroy_pool(b.id());

        a.simulate_crash(false);
        let reclaimed = a.allocator().recover_logs();
        assert_eq!(reclaimed, 1, "block behind a dangling destination is freed");
        destroy_pool(a.id());
    }

    #[test]
    fn crash_all_recovers_logs() {
        let p1 = PmemPool::create(PoolConfig::durable("t-ca-1", 1 << 20)).unwrap();
        let p2 = PmemPool::create(PoolConfig::durable("t-ca-2", 1 << 20)).unwrap();
        crash_all(&[p1.clone(), p2.clone()], false);
        assert_eq!(p1.crash_count(), 1);
        assert_eq!(p2.crash_count(), 1);
        destroy_pool(p1.id());
        destroy_pool(p2.id());
    }
}
