//! Persistence primitives: `clwb`/`sfence` equivalents.
//!
//! In ADR mode (paper §2.1) CPU caches are volatile, so stores become
//! durable only after an explicit cache-line flush, and ordering between
//! flushed groups requires a fence. These functions are the emulated
//! equivalents:
//!
//! * [`persist`] flushes the cache lines covering a byte range — in
//!   crash-simulation pools this copies the lines into the media image, and
//!   in all cases it feeds the performance model.
//! * [`fence`] orders prior flushes (a real `SeqCst` fence plus model cost).
//! * [`persist_obj`] / [`persist_range_fenced`] are convenience wrappers.
//!
//! Every index in this workspace performs durability exclusively through
//! this module, so flush/fence counts in [`crate::stats`] are complete.

use std::sync::atomic::{fence as cpu_fence, Ordering};

use crate::model;
use crate::pool;

/// Flushes the cache lines covering `[ptr, ptr + len)` (clwb equivalent).
///
/// Safe to call on any address; bytes outside registered pools are ignored
/// (they are ordinary DRAM and need no flush).
#[inline]
pub fn persist(ptr: *const u8, len: usize) {
    if len == 0 {
        return;
    }
    // Compiler barrier standing in for the store->clwb ordering.
    cpu_fence(Ordering::Release);
    if let Some((id, offset)) = pool::lookup_addr(ptr) {
        // Lock-free steady state: `with_pool` resolves the handle through a
        // per-thread cache instead of the registry mutex.
        pool::with_pool(id, |p| {
            // Pre-image capture must happen before the media copy.
            #[cfg(feature = "trace")]
            crate::trace::record_flush(p, offset, len);
            p.persist_range(offset, len)
        });
        model::on_flush(id, offset, len);
    }
}

/// Flushes an object's bytes.
#[inline]
pub fn persist_obj<T>(obj: &T) {
    persist(obj as *const T as *const u8, std::mem::size_of::<T>());
}

/// Ordering fence between persisted groups (sfence equivalent).
#[inline]
pub fn fence() {
    cpu_fence(Ordering::SeqCst);
    #[cfg(feature = "trace")]
    crate::trace::on_fence();
    model::on_fence();
}

/// Flush followed by a fence: the common "make durable now" idiom.
#[inline]
pub fn persist_range_fenced(ptr: *const u8, len: usize) {
    persist(ptr, len);
    fence();
}

/// Flush + fence for one object.
#[inline]
pub fn persist_obj_fenced<T>(obj: &T) {
    persist_obj(obj);
    fence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PmemPool, PoolConfig};

    #[test]
    fn persist_copies_to_media() {
        let pool = PmemPool::create(PoolConfig::durable("t-persist", 1 << 20)).unwrap();
        let pptr = pool.allocator().alloc(16).unwrap();
        let raw = pptr.as_mut_ptr();
        // SAFETY: 16 freshly allocated bytes.
        unsafe { raw.write_bytes(0x5A, 16) };
        persist(raw, 16);
        fence();
        pool.simulate_crash(false);
        // SAFETY: same allocation, remounted in place.
        unsafe { assert_eq!(*pool.at(pptr.offset()), 0x5A) };
        destroy_pool(pool.id());
    }

    #[test]
    fn persist_outside_pools_is_noop() {
        let x = 42u64;
        persist_obj(&x); // DRAM address: must not panic or account anything
        fence();
    }

    #[test]
    fn unflushed_neighbour_line_lost() {
        let pool = PmemPool::create(PoolConfig::durable("t-persist2", 1 << 20)).unwrap();
        let a = pool.allocator().alloc(64).unwrap();
        let b = pool.allocator().alloc(64).unwrap();
        // SAFETY: two distinct 64-byte allocations.
        unsafe {
            a.as_mut_ptr().write_bytes(0xAA, 64);
            b.as_mut_ptr().write_bytes(0xBB, 64);
        }
        persist(a.as_ptr(), 64); // only `a`
        fence();
        pool.simulate_crash(false);
        // SAFETY: offsets still valid after in-place remount.
        unsafe {
            assert_eq!(*pool.at(a.offset()), 0xAA);
            assert_eq!(*pool.at(b.offset()), 0x00);
        }
        destroy_pool(pool.id());
    }
}
