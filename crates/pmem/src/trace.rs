//! Event trace for crash-state model checking (feature `trace`).
//!
//! When the `trace` feature is enabled and a session is recording, the
//! persistence layer appends one event per flushed cache line, per fence and
//! per allocator operation into per-thread bounded rings. Crucially, each
//! flush event carries the *pre-image* — the media content of the line just
//! before the flush overwrote it. This lets a checker rewind the media image
//! of a finished run to any earlier fence boundary and re-materialize every
//! intermediate durable state from a single execution, instead of stopping
//! the workload at each crash point.
//!
//! The hooks are compiled out entirely without the feature; with the feature
//! built but no session recording, each hook costs one relaxed atomic load
//! and a branch, so the PR-1 lock-free persist fast path is preserved.
//!
//! Sequence numbers come from one global counter, so events from different
//! threads interleave in a total order. Pre-image capture and the media copy
//! of a flush are not one atomic step, so the order is only exact when a
//! single thread mutates a given pool — which is how the checker runs its
//! workloads. [`start`] resets the counter, making sequences deterministic
//! per session.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::pool::{PmemPool, PoolId};
use crate::CACHE_LINE;

/// One traced persistence event.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A cache line reached media via `persist()`. `line` is the line-aligned
    /// pool offset; `pre` is the media content the flush overwrote.
    Flush {
        seq: u64,
        pool: PoolId,
        line: u64,
        pre: [u8; CACHE_LINE],
    },
    /// An ordering fence (`sfence` equivalent).
    Fence { seq: u64 },
    /// The allocator handed out `[offset, offset + size)`.
    Alloc {
        seq: u64,
        pool: PoolId,
        offset: u64,
        size: u64,
    },
    /// The allocator reclaimed `[offset, offset + size)`.
    Free {
        seq: u64,
        pool: PoolId,
        offset: u64,
        size: u64,
    },
}

impl TraceEvent {
    /// Global sequence number of this event.
    pub fn seq(&self) -> u64 {
        match *self {
            TraceEvent::Flush { seq, .. }
            | TraceEvent::Fence { seq }
            | TraceEvent::Alloc { seq, .. }
            | TraceEvent::Free { seq, .. } => seq,
        }
    }
}

/// A completed trace session: events in global sequence order.
#[derive(Debug, Default)]
pub struct Trace {
    /// All retained events, sorted by sequence number.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (oldest-first). When non-zero, only the
    /// suffix of the run is rewindable.
    pub dropped: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static SESSION_EPOCH: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 18);

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: std::sync::OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = std::sync::OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn session_mutex() -> &'static Mutex<()> {
    static SESSION: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

thread_local! {
    /// (session epoch, this thread's ring for that session).
    static MY_RING: RefCell<(u64, Option<Arc<Mutex<Ring>>>)> = const { RefCell::new((u64::MAX, None)) };
}

/// Serializes trace sessions: hold the guard across `start()`..`stop()` so
/// concurrent tests/campaigns in one process cannot interleave recordings.
pub fn session() -> MutexGuard<'static, ()> {
    session_mutex().lock()
}

/// Starts recording with the given per-thread ring capacity (in events).
/// Resets the global sequence counter, so sequences are deterministic.
///
/// # Panics
///
/// Panics if a session is already recording (use [`session`] to serialize).
pub fn start(per_thread_capacity: usize) {
    assert!(
        !RECORDING.swap(true, Ordering::SeqCst),
        "a trace session is already recording"
    );
    registry().lock().clear();
    CAPACITY.store(per_thread_capacity.max(16), Ordering::SeqCst);
    SESSION_EPOCH.fetch_add(1, Ordering::SeqCst);
    SEQ.store(0, Ordering::SeqCst);
}

/// Stops recording and returns the merged trace.
pub fn stop() -> Trace {
    RECORDING.store(false, Ordering::SeqCst);
    let rings = std::mem::take(&mut *registry().lock());
    let mut trace = Trace::default();
    for ring in rings {
        let mut ring = ring.lock();
        trace.dropped += ring.dropped;
        let start = ring.start;
        let buf = std::mem::take(&mut ring.buf);
        // Oldest-first: [start..] then [..start].
        trace.events.extend_from_slice(&buf[start..]);
        trace.events.extend_from_slice(&buf[..start]);
    }
    trace.events.sort_by_key(TraceEvent::seq);
    trace
}

/// Whether a session is currently recording.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Current value of the global sequence counter. Used by checkers to bracket
/// operations: all events recorded so far have `seq < current_seq()`.
#[inline]
pub fn current_seq() -> u64 {
    SEQ.load(Ordering::SeqCst)
}

fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::SeqCst)
}

fn record(ev: TraceEvent) {
    let epoch = SESSION_EPOCH.load(Ordering::Relaxed);
    MY_RING.with(|cell| {
        let mut cell = cell.borrow_mut();
        if cell.0 != epoch {
            let ring = Arc::new(Mutex::new(Ring {
                buf: Vec::new(),
                start: 0,
                capacity: CAPACITY.load(Ordering::Relaxed),
                dropped: 0,
            }));
            registry().lock().push(Arc::clone(&ring));
            *cell = (epoch, Some(ring));
        }
        cell.1
            .as_ref()
            .expect("ring installed above")
            .lock()
            .push(ev);
    });
}

/// Hook: `persist()` is about to copy `[offset, offset + len)` of `pool` to
/// media. Records one [`TraceEvent::Flush`] per covered cache line with its
/// pre-image. Must run *before* the media copy.
#[inline]
pub(crate) fn record_flush(pool: &PmemPool, offset: u64, len: usize) {
    if !recording() {
        return;
    }
    if !pool.crash_sim() {
        return; // no media image: nothing to rewind
    }
    let id = pool.id();
    let start = offset & !(CACHE_LINE as u64 - 1);
    let end = (offset + len as u64).next_multiple_of(CACHE_LINE as u64);
    let mut line = start;
    while line < end {
        if let Some(pre) = pool.media_line(line) {
            record(TraceEvent::Flush {
                seq: next_seq(),
                pool: id,
                line,
                pre,
            });
        }
        line += CACHE_LINE as u64;
    }
}

/// Hook: an ordering fence was issued.
#[inline]
pub(crate) fn on_fence() {
    if !recording() {
        return;
    }
    record(TraceEvent::Fence { seq: next_seq() });
}

/// Hook: the allocator handed out a block.
#[inline]
pub(crate) fn on_alloc(pool: PoolId, offset: u64, size: u64) {
    if !recording() {
        return;
    }
    record(TraceEvent::Alloc {
        seq: next_seq(),
        pool,
        offset,
        size,
    });
}

/// Hook: the allocator reclaimed a block.
#[inline]
pub(crate) fn on_free(pool: PoolId, offset: u64, size: u64) {
    if !recording() {
        return;
    }
    record(TraceEvent::Free {
        seq: next_seq(),
        pool,
        offset,
        size,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;
    use crate::pool::{destroy_pool, PoolConfig};

    #[test]
    fn flush_records_pre_image_per_line() {
        let _session = session();
        let pool = PmemPool::create(PoolConfig::durable("t-trace-pre", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(128).unwrap().offset();
        // Establish a known media state for both lines.
        // SAFETY: freshly allocated 128 bytes.
        unsafe { pool.at(off).write_bytes(0xAA, 128) };
        persist::persist(pool.at(off), 128);
        persist::fence();

        start(1 << 12);
        // SAFETY: same allocation.
        unsafe { pool.at(off).write_bytes(0xBB, 128) };
        persist::persist(pool.at(off), 128);
        persist::fence();
        let trace = stop();

        let flushes: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Flush { line, pre, .. } => Some((*line, *pre)),
                _ => None,
            })
            .collect();
        assert_eq!(flushes.len(), 2, "two cache lines flushed");
        for (_, pre) in &flushes {
            assert!(pre.iter().all(|&b| b == 0xAA), "pre-image is old media");
        }
        assert!(matches!(
            trace.events.last(),
            Some(TraceEvent::Fence { .. })
        ));
        destroy_pool(pool.id());
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let _session = session();
        let pool = PmemPool::create(PoolConfig::durable("t-trace-ring", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        start(16);
        for i in 0..100u8 {
            // SAFETY: allocated 64 bytes.
            unsafe { pool.at(off).write_bytes(i, 64) };
            persist::persist(pool.at(off), 64);
        }
        let trace = stop();
        assert_eq!(trace.events.len(), 16);
        assert_eq!(trace.dropped, 84);
        // Retained events are the newest, in order.
        let seqs: Vec<u64> = trace.events.iter().map(TraceEvent::seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seqs.last().unwrap(), 99);
        destroy_pool(pool.id());
    }

    #[test]
    fn not_recording_costs_nothing_visible() {
        let _session = session();
        let pool = PmemPool::create(PoolConfig::durable("t-trace-off", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        // SAFETY: allocated 64 bytes.
        unsafe { pool.at(off).write_bytes(0x11, 64) };
        persist::persist(pool.at(off), 64);
        persist::fence();
        start(16);
        let trace = stop();
        assert!(trace.events.is_empty());
        destroy_pool(pool.id());
    }
}
