//! Persistent memory pools and the global pool registry.
//!
//! A [`PmemPool`] emulates one DAX-mapped NVM file (e.g. `/dev/pmem1` in the
//! paper's Figure 1). It is a large, 8-byte-aligned, stable-address region.
//! When *crash simulation* is enabled the pool additionally keeps a second
//! "media" image: data reaches the media image only through explicit
//! [`crate::persist`] calls (or simulated cache evictions), so a simulated
//! crash observes exactly the states an ADR-mode power failure could produce.
//!
//! Pools are registered in a process-global registry so that compact
//! persistent pointers ([`crate::pptr::PmPtr`]) can be resolved to raw
//! addresses with one array load, mirroring PACTree §5.8's base-address pool
//! array.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::{Cell, RefCell};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::alloc::{AllocMode, PmemAllocator};
use crate::stats::PoolStats;
use crate::{PmemError, Result, CACHE_LINE};

/// Maximum number of simultaneously registered pools.
pub const MAX_POOLS: usize = 256;

/// Alignment of the pool base address.
pub const POOL_ALIGN: usize = 4096;

/// Identifier of a registered pool; index into the global base-address table.
pub type PoolId = u16;

/// Configuration for creating a [`PmemPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Human-readable pool name (must be unique among live pools).
    pub name: String,
    /// Usable pool size in bytes (rounded up to [`POOL_ALIGN`]).
    pub size: usize,
    /// Logical NUMA node this pool's "DIMMs" belong to.
    pub numa_node: u16,
    /// Keep a media image so [`crate::crash`] can simulate power failures.
    pub crash_sim: bool,
    /// Allocator crash-consistency mode.
    pub alloc_mode: AllocMode,
}

impl PoolConfig {
    /// Convenience config: no crash simulation, transient allocator, node 0.
    pub fn volatile(name: &str, size: usize) -> Self {
        PoolConfig {
            name: name.to_string(),
            size,
            numa_node: 0,
            crash_sim: false,
            alloc_mode: AllocMode::Transient,
        }
    }

    /// Convenience config: crash simulation on, crash-consistent allocator.
    pub fn durable(name: &str, size: usize) -> Self {
        PoolConfig {
            name: name.to_string(),
            size,
            numa_node: 0,
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
        }
    }

    /// Sets the logical NUMA node.
    pub fn on_node(mut self, node: u16) -> Self {
        self.numa_node = node;
        self
    }

    /// Sets the allocator mode.
    pub fn with_alloc_mode(mut self, mode: AllocMode) -> Self {
        self.alloc_mode = mode;
        self
    }
}

/// An owned, aligned memory image.
struct Image {
    ptr: NonNull<u8>,
    layout: Layout,
}

// SAFETY: `Image` is a plain owned allocation; the raw pointer is only
// dereferenced through synchronized or atomic accesses by its users.
unsafe impl Send for Image {}
// SAFETY: See above; shared access goes through atomic loads/stores.
unsafe impl Sync for Image {}

impl Image {
    fn new_zeroed(size: usize) -> Self {
        let layout = Layout::from_size_align(size, POOL_ALIGN).expect("valid pool layout");
        // SAFETY: `layout` has non-zero size (callers round up) and valid alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(raw).expect("pool allocation failed");
        Image { ptr, layout }
    }

    fn base(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }
}

impl Drop for Image {
    fn drop(&mut self) {
        // SAFETY: `ptr` was allocated with exactly `layout` in `new_zeroed`.
        unsafe { dealloc(self.ptr.as_ptr(), self.layout) };
    }
}

/// A persistent memory pool.
///
/// The *volatile image* is the memory programs address directly (the CPU
/// cache + DRAM-visible state); the optional *media image* holds what would
/// survive a power failure.
pub struct PmemPool {
    id: PoolId,
    name: String,
    numa_node: u16,
    size: usize,
    volatile: Mutex<Option<Image>>,
    /// Raw base address of the volatile image, duplicated for lock-free reads.
    base: AtomicUsize,
    media: Option<Image>,
    allocator: PmemAllocator,
    /// Monotonic count of simulated crashes survived by this pool.
    crash_count: AtomicU64,
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("numa_node", &self.numa_node)
            .field("size", &self.size)
            .field("crash_sim", &self.media.is_some())
            .finish()
    }
}

impl PmemPool {
    /// Creates a pool and registers it in the global registry.
    ///
    /// Returns an error if the name is already taken or the registry is full.
    pub fn create(config: PoolConfig) -> Result<Arc<PmemPool>> {
        let size = config
            .size
            .max(PmemAllocator::MIN_POOL_SIZE)
            .next_multiple_of(POOL_ALIGN);
        let volatile = Image::new_zeroed(size);
        let media = config.crash_sim.then(|| Image::new_zeroed(size));
        let base = volatile.base() as usize;

        let mut reg = registry().lock();
        if reg.iter().flatten().any(|p| p.name == config.name) {
            return Err(PmemError::PoolExists(config.name));
        }
        let slot = reg
            .iter()
            .position(|p| p.is_none())
            .ok_or(PmemError::TooManyPools)?;
        let id = slot as PoolId;

        let allocator = PmemAllocator::new(id, size, config.alloc_mode);
        let pool = Arc::new(PmemPool {
            id,
            name: config.name,
            numa_node: config.numa_node,
            size,
            volatile: Mutex::new(Some(volatile)),
            base: AtomicUsize::new(base),
            media,
            allocator,
            crash_count: AtomicU64::new(0),
        });
        // The slot's counter bank outlives individual pools; a reused slot
        // must start from zero.
        POOL_STATS[slot].reset();
        pool.allocator.format(&pool);
        BASES[slot].store(base, Ordering::Release);
        SIZES[slot].store(size, Ordering::Release);
        NODES[slot].store(config.numa_node as usize, Ordering::Release);
        reg[slot] = Some(Arc::clone(&pool));
        POOL_HIGH_WATER.fetch_max(slot + 1, Ordering::Release);
        REGISTRY_GEN.fetch_add(1, Ordering::Release);
        Ok(pool)
    }

    /// The pool's registry id.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// The pool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical NUMA node of this pool's media.
    pub fn numa_node(&self) -> u16 {
        self.numa_node
    }

    /// Usable size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether crash simulation (a media image) is enabled.
    pub fn crash_sim(&self) -> bool {
        self.media.is_some()
    }

    /// Number of simulated crashes this pool has been remounted through.
    pub fn crash_count(&self) -> u64 {
        self.crash_count.load(Ordering::Relaxed)
    }

    /// Base address of the volatile image.
    pub fn base(&self) -> *mut u8 {
        self.base.load(Ordering::Acquire) as *mut u8
    }

    /// The pool's allocator.
    pub fn allocator(&self) -> &PmemAllocator {
        &self.allocator
    }

    /// Per-pool media statistics (the static counter bank for this slot).
    pub fn stats(&self) -> &'static PoolStats {
        stats_of(self.id)
    }

    /// Returns the offset of `ptr` within the pool, if it points inside it.
    pub fn offset_of(&self, ptr: *const u8) -> Option<u64> {
        let base = self.base() as usize;
        let p = ptr as usize;
        (p >= base && p < base + self.size).then(|| (p - base) as u64)
    }

    /// Raw pointer at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn at(&self, offset: u64) -> *mut u8 {
        assert!(
            (offset as usize) < self.size,
            "offset {offset} out of pool bounds"
        );
        // SAFETY: bounds-checked above; base is a live allocation of `size` bytes.
        unsafe { self.base().add(offset as usize) }
    }

    /// Copies the cache lines covering `[offset, offset + len)` from the
    /// volatile image into the media image (i.e. makes them durable).
    ///
    /// No-op unless crash simulation is enabled. Uses 8-byte atomic copies so
    /// it can run concurrently with writers touching neighbouring bytes.
    pub fn persist_range(&self, offset: u64, len: usize) {
        let Some(media) = &self.media else { return };
        let start = (offset as usize) & !(CACHE_LINE - 1);
        let end = ((offset as usize + len).next_multiple_of(CACHE_LINE)).min(self.size);
        let vol = self.base();
        let med = media.base();
        debug_assert_eq!(start % 8, 0);
        let mut off = start;
        while off < end {
            // SAFETY: `off` is in bounds and 8-byte aligned; both images are
            // live allocations of `self.size` bytes; accesses are atomic, so
            // racing with concurrent writers is defined behaviour (we copy
            // *some* value each 8-byte word held, exactly like a hardware
            // cache-line writeback would).
            unsafe {
                let src = &*(vol.add(off) as *const AtomicU64);
                let dst = &*(med.add(off) as *const AtomicU64);
                dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            off += 8;
        }
    }

    /// Simulates the CPU cache spontaneously evicting one cache line
    /// (making it durable without an explicit flush).
    pub fn evict_line(&self, offset: u64) {
        self.persist_range(offset & !(CACHE_LINE as u64 - 1), CACHE_LINE);
    }

    /// Simulates a power failure for this pool: the volatile image is
    /// replaced by the media image (everything never persisted is lost).
    ///
    /// With `move_base`, the pool is remounted at a *different* virtual
    /// address, exercising position independence of persistent pointers.
    ///
    /// # Panics
    ///
    /// Panics if crash simulation is not enabled for this pool.
    pub fn simulate_crash(&self, move_base: bool) {
        let media = self.media.as_ref().expect("crash simulation not enabled");
        let mut guard = self.volatile.lock();
        if move_base {
            let fresh = Image::new_zeroed(self.size);
            copy_atomic(media.base(), fresh.base(), self.size);
            let new_base = fresh.base() as usize;
            *guard = Some(fresh);
            self.base.store(new_base, Ordering::Release);
            BASES[self.id as usize].store(new_base, Ordering::Release);
        } else {
            let vol = guard.as_ref().expect("pool is mounted").base();
            copy_atomic(media.base(), vol, self.size);
        }
        self.crash_count.fetch_add(1, Ordering::Relaxed);
        // Rebuild volatile allocator state (bump cursor etc.) from the
        // persistent pool header, like a real remount would.
        self.allocator.remount(self);
    }

    /// Persists the entire pool (used by tests to establish a clean baseline).
    pub fn persist_all(&self) {
        self.persist_range(0, self.size);
    }

    /// Reads the current media content of the cache line containing `offset`.
    ///
    /// Returns `None` if crash simulation is disabled or the line is out of
    /// bounds. Used by the trace layer to capture flush pre-images.
    pub fn media_line(&self, offset: u64) -> Option<[u8; CACHE_LINE]> {
        let media = self.media.as_ref()?;
        let line = (offset as usize) & !(CACHE_LINE - 1);
        if line + CACHE_LINE > self.size {
            return None;
        }
        let mut out = [0u8; CACHE_LINE];
        let mut off = 0;
        while off < CACHE_LINE {
            // SAFETY: in bounds (checked above), 8-byte aligned; atomic reads
            // make racing flush writers defined behaviour.
            let word = unsafe {
                (*(media.base().add(line + off) as *const AtomicU64)).load(Ordering::Relaxed)
            };
            out[off..off + 8].copy_from_slice(&word.to_ne_bytes());
            off += 8;
        }
        Some(out)
    }

    /// Copies the entire media image into a fresh buffer.
    ///
    /// Returns `None` if crash simulation is disabled. This is the checker's
    /// end-of-run snapshot from which earlier crash states are rewound.
    pub fn media_snapshot(&self) -> Option<Vec<u8>> {
        let media = self.media.as_ref()?;
        let mut out = vec![0u8; self.size];
        copy_atomic_to_slice(media.base(), &mut out);
        Some(out)
    }

    /// Installs `image` as both the media and volatile content of the pool —
    /// i.e. remounts the pool as if a power failure had left exactly `image`
    /// on media. Bumps the crash count and rebuilds allocator state, like
    /// [`simulate_crash`](Self::simulate_crash).
    ///
    /// # Panics
    ///
    /// Panics if crash simulation is disabled or `image` has the wrong size.
    pub fn load_crash_image(&self, image: &[u8]) {
        let media = self.media.as_ref().expect("crash simulation not enabled");
        assert_eq!(image.len(), self.size, "crash image size mismatch");
        {
            let guard = self.volatile.lock();
            let vol = guard.as_ref().expect("pool is mounted").base();
            copy_slice_atomic(image, media.base());
            copy_slice_atomic(image, vol);
        }
        self.crash_count.fetch_add(1, Ordering::Relaxed);
        self.allocator.remount(self);
    }
}

fn copy_atomic(src: *const u8, dst: *mut u8, len: usize) {
    debug_assert_eq!(len % 8, 0);
    let mut off = 0;
    while off < len {
        // SAFETY: both regions are live, `len`-byte, 8-byte-aligned images;
        // atomic ops make concurrent access defined.
        unsafe {
            let s = &*(src.add(off) as *const AtomicU64);
            let d = &*(dst.add(off) as *const AtomicU64);
            d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        off += 8;
    }
}

fn copy_slice_atomic(src: &[u8], dst: *mut u8) {
    debug_assert_eq!(src.len() % 8, 0);
    let mut off = 0;
    while off < src.len() {
        let word = u64::from_ne_bytes(src[off..off + 8].try_into().expect("8-byte chunk"));
        // SAFETY: `dst` is a live image of at least `src.len()` bytes,
        // 8-byte aligned; atomic stores keep concurrent readers defined.
        unsafe { (*(dst.add(off) as *const AtomicU64)).store(word, Ordering::Relaxed) };
        off += 8;
    }
}

fn copy_atomic_to_slice(src: *const u8, dst: &mut [u8]) {
    debug_assert_eq!(dst.len() % 8, 0);
    let mut off = 0;
    while off < dst.len() {
        // SAFETY: `src` is a live image of at least `dst.len()` bytes,
        // 8-byte aligned; atomic loads keep concurrent writers defined.
        let word = unsafe { (*(src.add(off) as *const AtomicU64)).load(Ordering::Relaxed) };
        dst[off..off + 8].copy_from_slice(&word.to_ne_bytes());
        off += 8;
    }
}

impl Drop for PmemPool {
    fn drop(&mut self) {
        // The registry holds an Arc, so by the time we get here the pool has
        // already been unregistered (or the process is exiting).
    }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

/// Base address of each registered pool's volatile image (0 = unregistered).
static BASES: [AtomicUsize; MAX_POOLS] = [const { AtomicUsize::new(0) }; MAX_POOLS];
/// Size of each registered pool.
static SIZES: [AtomicUsize; MAX_POOLS] = [const { AtomicUsize::new(0) }; MAX_POOLS];
/// NUMA node of each registered pool.
static NODES: [AtomicUsize; MAX_POOLS] = [const { AtomicUsize::new(0) }; MAX_POOLS];
/// Whether a pool models DRAM (performance model skips it entirely).
static DRAM: [AtomicUsize; MAX_POOLS] = [const { AtomicUsize::new(0) }; MAX_POOLS];
/// One past the highest registered slot; bounds registry scans.
static POOL_HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// Per-slot media counter banks.
///
/// Static (rather than owned by [`PmemPool`]) so the model's hot path can
/// reach a pool's counters with one array index — no registry lock, no `Arc`
/// refcount traffic. Reset when a slot is (re)used by [`PmemPool::create`].
static POOL_STATS: [PoolStats; MAX_POOLS] = [const { PoolStats::new() }; MAX_POOLS];

/// Bumped on every registry mutation (create/destroy); validates the
/// per-thread pool-handle cache used by [`with_pool`].
static REGISTRY_GEN: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread cache of pool handles, validated against [`REGISTRY_GEN`].
    static POOL_CACHE: RefCell<PoolCache> = const {
        RefCell::new(PoolCache {
            gen: u64::MAX,
            pools: [const { None }; MAX_POOLS],
        })
    };
}

struct PoolCache {
    gen: u64,
    pools: [Option<Arc<PmemPool>>; MAX_POOLS],
}

fn registry() -> &'static Mutex<Vec<Option<Arc<PmemPool>>>> {
    static REGISTRY: std::sync::OnceLock<Mutex<Vec<Option<Arc<PmemPool>>>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new((0..MAX_POOLS).map(|_| None).collect()))
}

/// Resolves a pool id to the pool's current base address.
///
/// Returns null for unregistered ids — callers treat that as a dangling
/// persistent pointer.
#[inline]
pub fn base_of(id: PoolId) -> *mut u8 {
    BASES[id as usize].load(Ordering::Acquire) as *mut u8
}

/// Returns the registered pool with this id, if any.
///
/// Takes the registry lock; cold-path only. Steady-state code should use
/// [`with_pool`], which caches handles per thread.
pub fn pool_by_id(id: PoolId) -> Option<Arc<PmemPool>> {
    registry().lock().get(id as usize)?.clone()
}

/// Per-slot media counters, without any lock.
///
/// Valid for any id below [`MAX_POOLS`]; an unregistered slot's counters are
/// simply dormant (the bank is reset when the slot is next used).
#[inline]
pub fn stats_of(id: PoolId) -> &'static PoolStats {
    &POOL_STATS[id as usize]
}

/// Runs `f` on the registered pool with this id, resolving the handle
/// through a per-thread cache.
///
/// The steady state costs one atomic generation load plus a TLS array index;
/// the registry mutex is only taken when the cache misses (first use on this
/// thread, or after any pool was created/destroyed). The cached `Arc` keeps
/// the pool's images alive even if another thread destroys it mid-call, so
/// `f` never observes a freed pool.
///
/// `f` must not reenter `with_pool` on the same thread.
#[inline]
pub fn with_pool<R>(id: PoolId, f: impl FnOnce(&PmemPool) -> R) -> Option<R> {
    POOL_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        let gen = REGISTRY_GEN.load(Ordering::Acquire);
        if c.gen != gen {
            c.pools = [const { None }; MAX_POOLS];
            c.gen = gen;
        }
        let slot = c.pools.get_mut(id as usize)?;
        if slot.is_none() {
            *slot = pool_by_id(id);
        }
        slot.as_deref().map(f)
    })
}

/// Returns the registered pool with this name, if any.
pub fn pool_by_name(name: &str) -> Option<Arc<PmemPool>> {
    registry()
        .lock()
        .iter()
        .flatten()
        .find(|p| p.name == name)
        .cloned()
}

/// Finds which pool an address belongs to; returns `(pool_id, offset)`.
///
/// Lock-free: scans the base/size tables up to the high-water mark, trying
/// the calling thread's last hit first (persist streams overwhelmingly
/// target one pool at a time).
#[inline]
pub fn lookup_addr(ptr: *const u8) -> Option<(PoolId, u64)> {
    thread_local! {
        static LAST_HIT: Cell<usize> = const { Cell::new(0) };
    }
    #[inline]
    fn slot_contains(slot: usize, p: usize) -> Option<(PoolId, u64)> {
        let base = BASES[slot].load(Ordering::Acquire);
        if base == 0 {
            return None;
        }
        let size = SIZES[slot].load(Ordering::Acquire);
        (p >= base && p < base + size).then(|| (slot as PoolId, (p - base) as u64))
    }
    let p = ptr as usize;
    let hint = LAST_HIT.with(Cell::get);
    let hw = POOL_HIGH_WATER.load(Ordering::Acquire);
    if hint < hw {
        if let Some(hit) = slot_contains(hint, p) {
            return Some(hit);
        }
    }
    for slot in 0..hw {
        if slot == hint {
            continue;
        }
        if let Some(hit) = slot_contains(slot, p) {
            LAST_HIT.with(|c| c.set(slot));
            return Some(hit);
        }
    }
    None
}

/// NUMA node of a registered pool (0 if unregistered).
#[inline]
pub fn node_of(id: PoolId) -> u16 {
    NODES[id as usize].load(Ordering::Acquire) as u16
}

/// Marks a pool as emulated DRAM: the NVM performance model ignores it
/// (used for hybrid DRAM+NVM index baselines and ablations).
pub fn set_dram(id: PoolId, dram: bool) {
    DRAM[id as usize].store(dram as usize, Ordering::Release);
}

/// Whether a pool is emulated DRAM.
#[inline]
pub fn is_dram(id: PoolId) -> bool {
    DRAM[id as usize].load(Ordering::Acquire) != 0
}

/// Unregisters and drops a pool. Any persistent pointers into it dangle.
pub fn destroy_pool(id: PoolId) {
    let mut reg = registry().lock();
    if let Some(slot) = reg.get_mut(id as usize) {
        BASES[id as usize].store(0, Ordering::Release);
        SIZES[id as usize].store(0, Ordering::Release);
        *slot = None;
        REGISTRY_GEN.fetch_add(1, Ordering::Release);
    }
}

/// Iterates over all live pools.
pub fn all_pools() -> Vec<Arc<PmemPool>> {
    registry().lock().iter().flatten().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let pool = PmemPool::create(PoolConfig::volatile("t-create", 1 << 20)).unwrap();
        assert_eq!(pool.size() % POOL_ALIGN, 0);
        let base = pool.base();
        assert_eq!(base_of(pool.id()), base);
        let (id, off) = lookup_addr(unsafe { base.add(100) }).unwrap();
        assert_eq!(id, pool.id());
        assert_eq!(off, 100);
        destroy_pool(pool.id());
        assert!(lookup_addr(base).is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let p = PmemPool::create(PoolConfig::volatile("t-dup", 1 << 20)).unwrap();
        assert!(matches!(
            PmemPool::create(PoolConfig::volatile("t-dup", 1 << 20)),
            Err(PmemError::PoolExists(_))
        ));
        destroy_pool(p.id());
    }

    #[test]
    fn persist_survives_crash() {
        let pool = PmemPool::create(PoolConfig::durable("t-crash", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        let p = pool.at(off);
        // SAFETY: freshly allocated 64 bytes inside the pool.
        unsafe {
            p.write_bytes(0x11, 64);
        }
        pool.persist_range(off, 64);
        // Unpersisted sibling write.
        let off2 = pool.allocator().alloc(64).unwrap().offset();
        // SAFETY: freshly allocated 64 bytes inside the pool.
        unsafe { pool.at(off2).write_bytes(0x22, 64) };
        pool.simulate_crash(false);
        // SAFETY: offsets are in bounds; pool remounted in place.
        unsafe {
            assert_eq!(*pool.at(off), 0x11, "persisted data survives");
            assert_eq!(*pool.at(off2), 0x00, "unpersisted data is lost");
        }
        destroy_pool(pool.id());
    }

    #[test]
    fn crash_with_moved_base() {
        let pool = PmemPool::create(PoolConfig::durable("t-move", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(8).unwrap().offset();
        // SAFETY: allocated 8 bytes, 8-byte aligned.
        unsafe { (pool.at(off) as *mut u64).write(0xDEAD_BEEF) };
        pool.persist_range(off, 8);
        let old_base = pool.base();
        pool.simulate_crash(true);
        assert_ne!(pool.base(), old_base);
        // SAFETY: offset still in bounds after remount.
        unsafe { assert_eq!((pool.at(off) as *const u64).read(), 0xDEAD_BEEF) };
        assert_eq!(pool.crash_count(), 1);
        destroy_pool(pool.id());
    }

    #[test]
    fn eviction_makes_line_durable() {
        let pool = PmemPool::create(PoolConfig::durable("t-evict", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        // SAFETY: freshly allocated 64 bytes inside the pool.
        unsafe { pool.at(off).write_bytes(0x33, 64) };
        pool.evict_line(off);
        pool.simulate_crash(false);
        // SAFETY: offset in bounds.
        unsafe { assert_eq!(*pool.at(off), 0x33) };
        destroy_pool(pool.id());
    }
}
