//! Optane NVM performance model.
//!
//! We do not have DCPMM hardware, so this module models the performance
//! properties the paper's analysis (§2.1, §3.1) depends on:
//!
//! * **XPLine granularity** — media traffic is accounted in 256-byte units;
//!   a 64-byte cache-line access costs a full XPLine on the media.
//! * **XPBuffer write combining** — a small LRU of XPLine tags per NUMA
//!   node; flushing adjacent cache lines back-to-back combines into one
//!   media write (sequential writes are cheap, random writes amplify).
//! * **CPU cache filtering** — a per-thread direct-mapped cache of line tags
//!   decides which logical reads actually reach the media.
//! * **Bandwidth throttling** — token buckets per NUMA node for read and
//!   write traffic produce the paper's plateauing scalability curves once
//!   the (write-first) bandwidth saturates.
//! * **Latency injection** — calibrated spin delays for media reads,
//!   flushes, fences, and remote access.
//! * **Coherence modes** — in [`CoherenceMode::Directory`] every remote read
//!   issues a 64-byte directory write to the media (the paper's FH5 finding,
//!   the root cause of the cross-NUMA bandwidth meltdown); in
//!   [`CoherenceMode::Snoop`] remote reads only pay extra latency.
//!
//! Indexes report accesses at node granularity via [`on_read`]; writes are
//! charged at [`crate::persist::persist`] time via [`on_flush`]. The model is
//! disabled by default so unit tests run at full speed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::numa::{self, MAX_NODES};
use crate::pool::{self, PoolId};
use crate::stats;
use crate::{CACHE_LINE, XPLINE};

/// Cache coherence protocol across NUMA domains (paper §3.1.1, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Directory protocol: remote reads write directory state to the media.
    Directory,
    /// Snoop protocol: remote reads pay latency but no media writes.
    Snoop,
}

/// Configuration of the NVM performance model.
#[derive(Debug, Clone)]
pub struct NvmModelConfig {
    /// Master switch; when false every hook is a no-op.
    pub enabled: bool,
    /// Inject real wall-clock delays (spin) for modeled latencies.
    pub inject_latency: bool,
    /// Enforce bandwidth limits with token buckets.
    pub throttle: bool,
    /// Media read latency per XPLine miss, in nanoseconds.
    pub read_ns: u64,
    /// Cost of a cache-line flush reaching the WPQ, in nanoseconds.
    pub flush_ns: u64,
    /// Cost of an ordering fence, in nanoseconds.
    pub fence_ns: u64,
    /// Extra latency for crossing a NUMA boundary, in nanoseconds.
    pub remote_extra_ns: u64,
    /// Per-node media read bandwidth, bytes/second.
    pub read_bw: u64,
    /// Per-node media write bandwidth, bytes/second.
    pub write_bw: u64,
    /// Coherence protocol.
    pub coherence: CoherenceMode,
    /// XPBuffer entries (XPLines) per NUMA node.
    pub xpbuffer_lines: usize,
    /// Per-thread simulated CPU cache size, in cache lines (power of two);
    /// 0 disables read filtering (every read hits the media).
    pub cpu_cache_lines: usize,
    /// eADR mode (paper §3.5): CPU caches are part of the persistence
    /// domain, so cache-line flushes cost no synchronous latency (the store
    /// traffic still reaches the media eventually and consumes write
    /// bandwidth). Crash-consistency semantics are unchanged in the
    /// emulation: persists still mark data durable.
    pub eadr: bool,
    /// Time dilation factor: all injected latencies are multiplied by this
    /// and bandwidth is divided by it. With dilation large enough that
    /// stalls exceed the OS sleep granularity, waits become `thread::sleep`
    /// so *concurrent threads overlap their modeled NVM stalls even on a
    /// single-core host* — this is what makes thread-sweep scalability
    /// curves meaningful in an emulated environment.
    pub time_dilation: f64,
}

impl NvmModelConfig {
    /// Model fully disabled (the default; unit tests run with this).
    pub fn disabled() -> Self {
        NvmModelConfig {
            enabled: false,
            inject_latency: false,
            throttle: false,
            read_ns: 0,
            flush_ns: 0,
            fence_ns: 0,
            remote_extra_ns: 0,
            read_bw: u64::MAX,
            write_bw: u64::MAX,
            coherence: CoherenceMode::Snoop,
            xpbuffer_lines: 16,
            cpu_cache_lines: 1 << 14,
            eadr: false,
            time_dilation: 1.0,
        }
    }

    /// Accounting only: media counters are maintained but no delays are
    /// injected and no throttling happens. Used by the bandwidth figures
    /// (Figures 4, 5) and unit tests of the model itself.
    pub fn accounting() -> Self {
        NvmModelConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// The paper's default two-socket Optane machine (§6), scaled for an
    /// emulated environment: latency and bandwidth ratios follow the Optane
    /// characterizations cited by the paper (read ~300 ns, write-combined
    /// flush ~200 ns, 3-5x read/write bandwidth asymmetry).
    pub fn optane(coherence: CoherenceMode) -> Self {
        NvmModelConfig {
            enabled: true,
            inject_latency: true,
            throttle: true,
            read_ns: 300,
            flush_ns: 200,
            fence_ns: 80,
            remote_extra_ns: 250,
            read_bw: 12_000_000_000,
            write_bw: 3_500_000_000,
            coherence,
            xpbuffer_lines: 16,
            cpu_cache_lines: 1 << 14,
            eadr: false,
            time_dilation: 1.0,
        }
    }

    /// eADR variant of the Optane model: flush/fence latency disappears from
    /// the critical path, but media write bandwidth is still consumed.
    pub fn optane_eadr_dilated(coherence: CoherenceMode, dilation: f64) -> Self {
        let mut c = Self::optane_dilated(coherence, dilation);
        c.eadr = true;
        c
    }

    /// Time-dilated Optane model for thread-sweep benchmarks: latencies are
    /// stretched until they exceed the OS sleep granularity, so modeled NVM
    /// stalls are spent sleeping and N worker threads genuinely overlap
    /// their stalls regardless of host core count. Bandwidth shrinks by the
    /// same factor, preserving the latency/bandwidth balance. Throughputs
    /// measured under this config are reported after multiplying by the
    /// dilation factor.
    pub fn optane_dilated(coherence: CoherenceMode, dilation: f64) -> Self {
        let mut c = Self::optane(coherence);
        c.time_dilation = dilation;
        c
    }

    /// The low-bandwidth second evaluation machine (§6.2): about 3x less
    /// cumulative NVM bandwidth than the default platform.
    pub fn low_bandwidth() -> Self {
        let mut c = Self::optane(CoherenceMode::Snoop);
        c.read_bw /= 3;
        c.write_bw /= 3;
        c
    }
}

impl Default for NvmModelConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A token bucket enforcing a byte/second rate.
struct TokenBucket {
    tokens: AtomicI64,
    last_refill_ns: AtomicU64,
    rate_per_ns: f64,
    burst: i64,
}

impl TokenBucket {
    fn new(rate_bytes_per_sec: u64) -> Self {
        let burst = (rate_bytes_per_sec / 1000).max(64 * 1024) as i64; // ~1 ms worth
        TokenBucket {
            tokens: AtomicI64::new(burst),
            last_refill_ns: AtomicU64::new(0),
            rate_per_ns: rate_bytes_per_sec as f64 / 1e9,
            burst,
        }
    }

    /// Blocks (spins) until `bytes` tokens are available, then consumes them.
    fn acquire(&self, bytes: u64, origin: &Instant) {
        if self.rate_per_ns >= 1e9 {
            return; // effectively unlimited
        }
        let need = bytes as i64;
        loop {
            self.refill(origin);
            let cur = self.tokens.load(Ordering::Relaxed);
            if cur >= need {
                if self
                    .tokens
                    .compare_exchange_weak(cur, cur - need, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn refill(&self, origin: &Instant) {
        let now = origin.elapsed().as_nanos() as u64;
        let last = self.last_refill_ns.load(Ordering::Relaxed);
        if now <= last {
            return;
        }
        if self
            .last_refill_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let add = ((now - last) as f64 * self.rate_per_ns) as i64;
            let cur = self.tokens.load(Ordering::Relaxed);
            let new = (cur + add).min(self.burst);
            if new > cur {
                self.tokens.fetch_add(new - cur, Ordering::Relaxed);
            }
        }
    }
}

/// A small LRU set of XPLine tags modeling the write-combining XPBuffer.
struct XpBuffer {
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
}

impl XpBuffer {
    fn new(lines: usize) -> Self {
        XpBuffer {
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            clock: 0,
        }
    }

    /// Returns true if the XPLine was already buffered (write combined).
    fn touch(&mut self, tag: u64) -> bool {
        self.clock += 1;
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for i in 0..self.tags.len() {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        false
    }
}

/// Per-NUMA-node model state.
struct NodeState {
    read_bucket: TokenBucket,
    write_bucket: TokenBucket,
    xpbuffer: Mutex<XpBuffer>,
}

/// The live model runtime built from a config.
struct Runtime {
    config: NvmModelConfig,
    nodes: Vec<NodeState>,
    origin: Instant,
    epoch: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RUNTIME: OnceLock<RwLock<Arc<Runtime>>> = OnceLock::new();
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn runtime_cell() -> &'static RwLock<Arc<Runtime>> {
    RUNTIME.get_or_init(|| RwLock::new(Arc::new(build_runtime(NvmModelConfig::disabled()))))
}

fn build_runtime(config: NvmModelConfig) -> Runtime {
    let dilation = config.time_dilation.max(1.0);
    let read_bw = (config.read_bw as f64 / dilation) as u64;
    let write_bw = (config.write_bw as f64 / dilation) as u64;
    let nodes = (0..MAX_NODES)
        .map(|_| NodeState {
            read_bucket: TokenBucket::new(read_bw.max(1)),
            write_bucket: TokenBucket::new(write_bw.max(1)),
            xpbuffer: Mutex::new(XpBuffer::new(config.xpbuffer_lines.max(1))),
        })
        .collect();
    Runtime {
        config,
        nodes,
        origin: Instant::now(),
        epoch: EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
    }
}

/// Installs a new model configuration (replaces the previous one globally).
pub fn set_config(config: NvmModelConfig) {
    ENABLED.store(config.enabled, Ordering::Release);
    *runtime_cell().write() = Arc::new(build_runtime(config));
}

/// Returns a copy of the active configuration.
pub fn config() -> NvmModelConfig {
    runtime_cell().read().config.clone()
}

/// Whether the model currently does anything.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

fn with_runtime<R>(f: impl FnOnce(&Runtime) -> R) -> R {
    let rt = runtime_cell().read().clone();
    f(&rt)
}

// Per-thread direct-mapped CPU cache simulation: tag array indexed by line id.
thread_local! {
    static CPU_CACHE: RefCell<CpuCache> = const { RefCell::new(CpuCache::empty()) };
}

struct CpuCache {
    tags: Vec<u64>,
    mask: u64,
    epoch: u64,
}

impl CpuCache {
    const fn empty() -> Self {
        CpuCache {
            tags: Vec::new(),
            mask: 0,
            epoch: 0,
        }
    }

    fn ensure(&mut self, lines: usize, epoch: u64) {
        if self.tags.len() != lines || self.epoch != epoch {
            self.tags = vec![u64::MAX; lines];
            self.mask = lines as u64 - 1;
            self.epoch = epoch;
        }
    }

    /// Returns true on hit.
    fn access(&mut self, line: u64) -> bool {
        let idx = (line & self.mask) as usize;
        if self.tags[idx] == line {
            true
        } else {
            self.tags[idx] = line;
            false
        }
    }
}

/// Busy-waits approximately `ns` nanoseconds.
#[inline]
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Minimum dilated wait that is worth a real `thread::sleep` (below this the
/// OS timer slack dominates).
const SLEEP_THRESHOLD_NS: u64 = 100_000;

thread_local! {
    /// Accumulated dilated stall not yet slept (time-dilated mode).
    static PENDING_STALL_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Waits `ns` nanoseconds of *model time*.
///
/// Without dilation this spins. With dilation, stalls accumulate per thread
/// and are paid as real `thread::sleep`s once they exceed the OS timer
/// granularity — so every modeled stall costs proportional wall time (cost
/// ratios stay exact) while concurrent threads genuinely overlap their
/// stalls even on a single-core host. The deferral window is bounded by
/// [`SLEEP_THRESHOLD_NS`] of wall time.
#[inline]
fn model_wait(cfg: &NvmModelConfig, ns: u64) {
    if ns == 0 {
        return;
    }
    let dilation = cfg.time_dilation.max(1.0);
    if dilation <= 1.0 {
        spin_ns(ns);
        return;
    }
    let dilated = (ns as f64 * dilation) as u64;
    PENDING_STALL_NS.with(|p| {
        let total = p.get() + dilated;
        if total >= SLEEP_THRESHOLD_NS {
            p.set(0);
            std::thread::sleep(std::time::Duration::from_nanos(total));
        } else {
            p.set(total);
        }
    });
}

/// Reports that the running thread read `len` bytes starting at `offset` of
/// pool `pool`.
///
/// Charges media reads for XPLines missed by the simulated CPU cache,
/// directory writes in [`CoherenceMode::Directory`] when the access is
/// remote, throttles against the node's read bandwidth, and injects read
/// latency.
#[inline]
pub fn on_read(pool: PoolId, offset: u64, len: usize) {
    if !enabled() || len == 0 || pool::is_dram(pool) {
        return;
    }
    on_read_slow(pool, offset, len);
}

#[cold]
fn on_read_slow(pool: PoolId, offset: u64, len: usize) {
    with_runtime(|rt| {
        let cfg = &rt.config;
        let pool_node = pool::node_of(pool) as usize;
        let my_node = numa::current_node() as usize;
        let remote = pool_node != my_node;

        // Count distinct cache lines and XPLines missed by the CPU cache.
        let first_line = offset / CACHE_LINE as u64;
        let last_line = (offset + len as u64 - 1) / CACHE_LINE as u64;
        let mut missed_lines = 0u64;
        let mut missed_xplines = 0u64;
        let mut last_xp = u64::MAX;
        CPU_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if cfg.cpu_cache_lines > 0 {
                c.ensure(cfg.cpu_cache_lines, rt.epoch);
            }
            for line in first_line..=last_line {
                let global_line = ((pool as u64) << 48) | line;
                let hit = cfg.cpu_cache_lines > 0 && c.access(global_line);
                if !hit {
                    missed_lines += 1;
                    let xp = line / (XPLINE / CACHE_LINE) as u64;
                    if xp != last_xp {
                        missed_xplines += 1;
                        last_xp = xp;
                    }
                }
            }
        });
        if missed_lines == 0 {
            return;
        }

        let read_bytes = missed_xplines * XPLINE as u64;
        let pstats = pool::pool_by_id(pool);
        if let Some(p) = &pstats {
            p.stats().media_read_bytes.fetch_add(read_bytes, Ordering::Relaxed);
        }
        stats::global()
            .media_read_bytes
            .fetch_add(read_bytes, Ordering::Relaxed);

        // FH5: directory coherence turns remote reads into media writes.
        let mut dir_bytes = 0;
        if remote && cfg.coherence == CoherenceMode::Directory {
            dir_bytes = missed_lines * CACHE_LINE as u64;
            if let Some(p) = &pstats {
                p.stats()
                    .directory_write_bytes
                    .fetch_add(dir_bytes, Ordering::Relaxed);
            }
            stats::global()
                .directory_write_bytes
                .fetch_add(dir_bytes, Ordering::Relaxed);
        }

        if cfg.throttle {
            let node = &rt.nodes[pool_node.min(MAX_NODES - 1)];
            node.read_bucket.acquire(read_bytes, &rt.origin);
            if dir_bytes > 0 {
                node.write_bucket.acquire(dir_bytes, &rt.origin);
            }
        }
        if cfg.inject_latency {
            let mut ns = cfg.read_ns * missed_xplines;
            if remote {
                ns += cfg.remote_extra_ns;
            }
            model_wait(cfg, ns);
        }
    });
}

/// Reports a cache-line flush of `[offset, offset+len)` in pool `pool`
/// (called from [`crate::persist::persist`]).
#[inline]
pub fn on_flush(pool: PoolId, offset: u64, len: usize) {
    if !enabled() || len == 0 || pool::is_dram(pool) {
        return;
    }
    on_flush_slow(pool, offset, len);
}

#[cold]
fn on_flush_slow(pool: PoolId, offset: u64, len: usize) {
    with_runtime(|rt| {
        let cfg = &rt.config;
        let pool_node = pool::node_of(pool) as usize;
        let my_node = numa::current_node() as usize;
        let remote = pool_node != my_node;

        let first_line = offset / CACHE_LINE as u64;
        let last_line = (offset + len as u64 - 1) / CACHE_LINE as u64;
        let n_lines = last_line - first_line + 1;

        // The current-generation clwb also invalidates the line (FH4): the
        // next read of it will miss. Model by evicting from the CPU cache sim.
        if cfg.cpu_cache_lines > 0 {
            CPU_CACHE.with(|c| {
                let mut c = c.borrow_mut();
                c.ensure(cfg.cpu_cache_lines, rt.epoch);
                for line in first_line..=last_line {
                    let global_line = ((pool as u64) << 48) | line;
                    let idx = (global_line & c.mask) as usize;
                    if c.tags[idx] == global_line {
                        c.tags[idx] = u64::MAX;
                    }
                }
            });
        }

        // XPBuffer write combining: count XPLines not already buffered.
        let node = &rt.nodes[pool_node.min(MAX_NODES - 1)];
        let mut media_lines = 0u64;
        {
            let mut buf = node.xpbuffer.lock();
            let first_xp = first_line / (XPLINE / CACHE_LINE) as u64;
            let last_xp = last_line / (XPLINE / CACHE_LINE) as u64;
            for xp in first_xp..=last_xp {
                let tag = ((pool as u64) << 48) | xp;
                if !buf.touch(tag) {
                    media_lines += 1;
                }
            }
        }
        let write_bytes = media_lines * XPLINE as u64;

        let pstats = pool::pool_by_id(pool);
        if let Some(p) = &pstats {
            p.stats().flushes.fetch_add(n_lines, Ordering::Relaxed);
            p.stats()
                .media_write_bytes
                .fetch_add(write_bytes, Ordering::Relaxed);
        }
        stats::global().flushes.fetch_add(n_lines, Ordering::Relaxed);
        stats::global()
            .media_write_bytes
            .fetch_add(write_bytes, Ordering::Relaxed);

        if cfg.throttle && write_bytes > 0 {
            node.write_bucket.acquire(write_bytes, &rt.origin);
        }
        if cfg.inject_latency && !cfg.eadr {
            let mut ns = cfg.flush_ns * n_lines;
            if remote {
                ns += cfg.remote_extra_ns;
            }
            model_wait(cfg, ns);
        }
    });
}

/// Reports a store that dirties NVM without an explicit flush (e.g. lock
/// state mutated by readers, GA2): the line will be written back by cache
/// eviction eventually, consuming write bandwidth but adding no synchronous
/// latency.
#[inline]
pub fn on_dirty(pool: PoolId, offset: u64, len: usize) {
    if !enabled() || len == 0 || pool::is_dram(pool) {
        return;
    }
    on_dirty_slow(pool, offset, len);
}

#[cold]
fn on_dirty_slow(pool: PoolId, offset: u64, len: usize) {
    with_runtime(|rt| {
        let cfg = &rt.config;
        let pool_node = pool::node_of(pool) as usize;
        let node = &rt.nodes[pool_node.min(MAX_NODES - 1)];
        let first_xp = offset / XPLINE as u64;
        let last_xp = (offset + len as u64 - 1) / XPLINE as u64;
        let mut media_lines = 0u64;
        {
            let mut buf = node.xpbuffer.lock();
            for xp in first_xp..=last_xp {
                if !buf.touch(((pool as u64) << 48) | xp) {
                    media_lines += 1;
                }
            }
        }
        let bytes = media_lines * XPLINE as u64;
        if bytes == 0 {
            return;
        }
        if let Some(p) = pool::pool_by_id(pool) {
            p.stats().media_write_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        stats::global()
            .media_write_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        if cfg.throttle {
            node.write_bucket.acquire(bytes, &rt.origin);
        }
    });
}

/// Reports an ordering fence (`sfence` equivalent).
#[inline]
pub fn on_fence() {
    if !enabled() {
        return;
    }
    stats::global().fences.fetch_add(1, Ordering::Relaxed);
    with_runtime(|rt| {
        if rt.config.inject_latency && !rt.config.eadr {
            model_wait(&rt.config, rt.config.fence_ns);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PmemPool, PoolConfig};

    fn with_accounting<R>(f: impl FnOnce() -> R) -> R {
        set_config(NvmModelConfig::accounting());
        let r = f();
        set_config(NvmModelConfig::disabled());
        r
    }

    #[test]
    fn read_charges_xpline_granularity() {
        with_accounting(|| {
            let pool = PmemPool::create(PoolConfig::volatile("t-model-read", 1 << 20)).unwrap();
            let before = stats::global().snapshot();
            on_read(pool.id(), 4096, 64); // one cold cache line
            let after = stats::global().snapshot();
            assert_eq!(after.since(&before).media_read_bytes, XPLINE as u64);
            // Second read of the same line hits the simulated CPU cache.
            let before = stats::global().snapshot();
            on_read(pool.id(), 4096, 64);
            let after = stats::global().snapshot();
            assert_eq!(after.since(&before).media_read_bytes, 0);
            destroy_pool(pool.id());
        });
    }

    #[test]
    fn sequential_flushes_write_combine() {
        with_accounting(|| {
            let pool = PmemPool::create(PoolConfig::volatile("t-model-wc", 1 << 20)).unwrap();
            let before = pool.stats().snapshot();
            // Four consecutive cache lines inside one XPLine: one media write.
            for i in 0..4u64 {
                on_flush(pool.id(), 8192 + i * 64, 64);
            }
            let d = pool.stats().snapshot().since(&before);
            assert_eq!(d.media_write_bytes, XPLINE as u64);
            assert_eq!(d.flushes, 4);
            destroy_pool(pool.id());
        });
    }

    #[test]
    fn scattered_flushes_amplify() {
        with_accounting(|| {
            let pool = PmemPool::create(PoolConfig::volatile("t-model-amp", 1 << 20)).unwrap();
            let before = pool.stats().snapshot();
            // 64 lines spread over 64 distinct XPLines, far enough apart to
            // defeat the 16-entry XPBuffer.
            for i in 0..64u64 {
                on_flush(pool.id(), i * 4096, 64);
            }
            let d = pool.stats().snapshot().since(&before);
            assert_eq!(d.media_write_bytes, 64 * XPLINE as u64);
            destroy_pool(pool.id());
        });
    }

    #[test]
    fn directory_mode_charges_remote_reads() {
        let mut cfg = NvmModelConfig::accounting();
        cfg.coherence = CoherenceMode::Directory;
        cfg.cpu_cache_lines = 0; // every read reaches the media
        set_config(cfg);
        let pool = PmemPool::create(PoolConfig::volatile("t-model-dir", 1 << 20).on_node(1))
            .unwrap();
        numa::pin_thread(0); // thread on node 0, pool on node 1 => remote
        let before = pool.stats().snapshot();
        on_read(pool.id(), 0, 64);
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(d.media_read_bytes, XPLINE as u64);
        assert_eq!(d.directory_write_bytes, CACHE_LINE as u64);
        set_config(NvmModelConfig::disabled());
        destroy_pool(pool.id());
    }

    #[test]
    fn token_bucket_enforces_rate() {
        let origin = Instant::now();
        let bucket = TokenBucket::new(1_000_000_000); // 1 GB/s => 1 byte/ns
        let start = Instant::now();
        // Drain the burst, then 2 MB more must take ~2 ms.
        bucket.acquire(bucket.burst as u64, &origin);
        bucket.acquire(2_000_000, &origin);
        assert!(start.elapsed().as_micros() >= 1500, "throttle too permissive");
    }

    #[test]
    fn spin_ns_waits() {
        let t = Instant::now();
        spin_ns(100_000);
        assert!(t.elapsed().as_nanos() >= 100_000);
    }
}
