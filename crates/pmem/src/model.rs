//! Optane NVM performance model.
//!
//! We do not have DCPMM hardware, so this module models the performance
//! properties the paper's analysis (§2.1, §3.1) depends on:
//!
//! * **XPLine granularity** — media traffic is accounted in 256-byte units;
//!   a 64-byte cache-line access costs a full XPLine on the media.
//! * **XPBuffer write combining** — a small LRU of XPLine tags per NUMA
//!   node; flushing adjacent cache lines back-to-back combines into one
//!   media write (sequential writes are cheap, random writes amplify).
//! * **CPU cache filtering** — a per-thread direct-mapped cache of line tags
//!   decides which logical reads actually reach the media.
//! * **Bandwidth throttling** — token buckets per NUMA node for read and
//!   write traffic produce the paper's plateauing scalability curves once
//!   the (write-first) bandwidth saturates.
//! * **Latency injection** — calibrated spin delays for media reads,
//!   flushes, fences, and remote access.
//! * **Coherence modes** — in [`CoherenceMode::Directory`] every remote read
//!   issues a 64-byte directory write to the media (the paper's FH5 finding,
//!   the root cause of the cross-NUMA bandwidth meltdown); in
//!   [`CoherenceMode::Snoop`] remote reads only pay extra latency.
//!
//! Indexes report accesses at node granularity via [`on_read`]; writes are
//! charged at [`crate::persist::persist`] time via [`on_flush`]. The model is
//! disabled by default so unit tests run at full speed.
//!
//! The hooks sit on every modeled memory access of every index, so their
//! steady state takes **no locks**: the runtime is snapshotted per thread
//! and revalidated with one epoch load ([`with_runtime`]), counters are
//! striped per thread ([`crate::stats`]), pool metadata comes from lock-free
//! static tables ([`crate::pool::stats_of`]/[`crate::pool::node_of`]), and
//! the XPBuffer is a lock-free set-associative tag cache. Locks remain only
//! on cold paths ([`set_config`], pool create/destroy).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::RwLock;

use crate::numa::{self, MAX_NODES};
use crate::pool::{self, PoolId};
use crate::stats;
use crate::{CACHE_LINE, XPLINE};

/// Cache coherence protocol across NUMA domains (paper §3.1.1, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Directory protocol: remote reads write directory state to the media.
    Directory,
    /// Snoop protocol: remote reads pay latency but no media writes.
    Snoop,
}

/// Configuration of the NVM performance model.
#[derive(Debug, Clone)]
pub struct NvmModelConfig {
    /// Master switch; when false every hook is a no-op.
    pub enabled: bool,
    /// Inject real wall-clock delays (spin) for modeled latencies.
    pub inject_latency: bool,
    /// Enforce bandwidth limits with token buckets.
    pub throttle: bool,
    /// Media read latency per XPLine miss, in nanoseconds.
    pub read_ns: u64,
    /// Cost of a cache-line flush reaching the WPQ, in nanoseconds.
    pub flush_ns: u64,
    /// Cost of an ordering fence, in nanoseconds.
    pub fence_ns: u64,
    /// Extra latency for crossing a NUMA boundary, in nanoseconds.
    pub remote_extra_ns: u64,
    /// Per-node media read bandwidth, bytes/second.
    pub read_bw: u64,
    /// Per-node media write bandwidth, bytes/second.
    pub write_bw: u64,
    /// Coherence protocol.
    pub coherence: CoherenceMode,
    /// XPBuffer entries (XPLines) per NUMA node.
    pub xpbuffer_lines: usize,
    /// Per-thread simulated CPU cache size, in cache lines (power of two);
    /// 0 disables read filtering (every read hits the media).
    pub cpu_cache_lines: usize,
    /// eADR mode (paper §3.5): CPU caches are part of the persistence
    /// domain, so cache-line flushes cost no synchronous latency (the store
    /// traffic still reaches the media eventually and consumes write
    /// bandwidth). Crash-consistency semantics are unchanged in the
    /// emulation: persists still mark data durable.
    pub eadr: bool,
    /// Time dilation factor: all injected latencies are multiplied by this
    /// and bandwidth is divided by it. With dilation large enough that
    /// stalls exceed the OS sleep granularity, waits become `thread::sleep`
    /// so *concurrent threads overlap their modeled NVM stalls even on a
    /// single-core host* — this is what makes thread-sweep scalability
    /// curves meaningful in an emulated environment.
    pub time_dilation: f64,
}

impl NvmModelConfig {
    /// Model fully disabled (the default; unit tests run with this).
    pub fn disabled() -> Self {
        NvmModelConfig {
            enabled: false,
            inject_latency: false,
            throttle: false,
            read_ns: 0,
            flush_ns: 0,
            fence_ns: 0,
            remote_extra_ns: 0,
            read_bw: u64::MAX,
            write_bw: u64::MAX,
            coherence: CoherenceMode::Snoop,
            xpbuffer_lines: 16,
            cpu_cache_lines: 1 << 14,
            eadr: false,
            time_dilation: 1.0,
        }
    }

    /// Accounting only: media counters are maintained but no delays are
    /// injected and no throttling happens. Used by the bandwidth figures
    /// (Figures 4, 5) and unit tests of the model itself.
    pub fn accounting() -> Self {
        NvmModelConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// The paper's default two-socket Optane machine (§6), scaled for an
    /// emulated environment: latency and bandwidth ratios follow the Optane
    /// characterizations cited by the paper (read ~300 ns, write-combined
    /// flush ~200 ns, 3-5x read/write bandwidth asymmetry).
    pub fn optane(coherence: CoherenceMode) -> Self {
        NvmModelConfig {
            enabled: true,
            inject_latency: true,
            throttle: true,
            read_ns: 300,
            flush_ns: 200,
            fence_ns: 80,
            remote_extra_ns: 250,
            read_bw: 12_000_000_000,
            write_bw: 3_500_000_000,
            coherence,
            xpbuffer_lines: 16,
            cpu_cache_lines: 1 << 14,
            eadr: false,
            time_dilation: 1.0,
        }
    }

    /// eADR variant of the Optane model: flush/fence latency disappears from
    /// the critical path, but media write bandwidth is still consumed.
    pub fn optane_eadr_dilated(coherence: CoherenceMode, dilation: f64) -> Self {
        let mut c = Self::optane_dilated(coherence, dilation);
        c.eadr = true;
        c
    }

    /// Time-dilated Optane model for thread-sweep benchmarks: latencies are
    /// stretched until they exceed the OS sleep granularity, so modeled NVM
    /// stalls are spent sleeping and N worker threads genuinely overlap
    /// their stalls regardless of host core count. Bandwidth shrinks by the
    /// same factor, preserving the latency/bandwidth balance. Throughputs
    /// measured under this config are reported after multiplying by the
    /// dilation factor.
    pub fn optane_dilated(coherence: CoherenceMode, dilation: f64) -> Self {
        let mut c = Self::optane(coherence);
        c.time_dilation = dilation;
        c
    }

    /// The low-bandwidth second evaluation machine (§6.2): about 3x less
    /// cumulative NVM bandwidth than the default platform.
    pub fn low_bandwidth() -> Self {
        let mut c = Self::optane(CoherenceMode::Snoop);
        c.read_bw /= 3;
        c.write_bw /= 3;
        c
    }
}

impl Default for NvmModelConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A token bucket enforcing a byte/second (or unit/second) rate.
///
/// Used internally by the NVM model for media bandwidth throttling, and
/// publicly by the `pacsrv` service layer as an ingress admission throttle
/// (non-blocking [`try_acquire`](Self::try_acquire) there, so overload
/// turns into an explicit shed instead of a stalled caller).
pub struct TokenBucket {
    tokens: AtomicI64,
    last_refill_ns: AtomicU64,
    rate_per_ns: f64,
    burst: i64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_bytes_per_sec` with a ~1 ms burst
    /// allowance (floored at 64 KiB so tiny rates still make progress).
    pub fn new(rate_bytes_per_sec: u64) -> Self {
        let burst = (rate_bytes_per_sec / 1000).max(64 * 1024) as i64; // ~1 ms worth
        TokenBucket {
            tokens: AtomicI64::new(burst),
            last_refill_ns: AtomicU64::new(0),
            rate_per_ns: rate_bytes_per_sec as f64 / 1e9,
            burst,
        }
    }

    /// A bucket refilling at `rate_per_sec` with an explicit burst cap
    /// (admission-control use: burst = how far a traffic spike may run
    /// ahead of the sustained rate before requests are shed).
    pub fn with_burst(rate_per_sec: u64, burst: u64) -> Self {
        TokenBucket {
            tokens: AtomicI64::new(burst.max(1) as i64),
            last_refill_ns: AtomicU64::new(0),
            rate_per_ns: rate_per_sec as f64 / 1e9,
            burst: burst.max(1) as i64,
        }
    }

    /// Non-blocking acquire: consumes `units` tokens only if the current
    /// balance covers all of them, returning whether admission succeeded.
    ///
    /// Unlike [`acquire`](Self::acquire), this never takes the balance
    /// negative: a failed attempt leaves it untouched (shed requests do
    /// not dig the bucket into debt and starve admitted ones), and a
    /// successful one subtracts only what the balance covers, so a large
    /// batch cannot ride in on the last token and overdraw the bucket.
    /// A consequence admission-control callers must size for: a request
    /// for more than `burst` units can never succeed — configure the
    /// burst to cover the largest batch submitted in one call.
    pub fn try_acquire(&self, units: u64, origin: &Instant) -> bool {
        self.refill(origin);
        let need = units.max(1).min(i64::MAX as u64) as i64;
        let mut cur = self.tokens.load(Ordering::Relaxed);
        loop {
            if cur < need {
                return false;
            }
            match self.tokens.compare_exchange_weak(
                cur,
                cur - need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Consumes `bytes` tokens, blocking until the balance is repaid.
    ///
    /// Debt-based: the cost is subtracted unconditionally (one `fetch_sub`,
    /// no CAS loop) and a negative balance is bandwidth debt the thread
    /// waits out at the refill rate. This also handles requests larger than
    /// the burst size, which a "wait until the balance covers the request"
    /// scheme can never satisfy.
    ///
    /// Waiting backs off in tiers — brief spin, then `yield_now`, then a
    /// sleep sized to the remaining debt — so a throttled thread does not
    /// monopolize a core (essential on hosts with fewer cores than worker
    /// threads).
    pub fn acquire(&self, bytes: u64, origin: &Instant) {
        if self.rate_per_ns >= 1e9 {
            return; // effectively unlimited
        }
        let need = bytes as i64;
        self.refill(origin);
        if self.tokens.fetch_sub(need, Ordering::Relaxed) - need >= 0 {
            return;
        }
        // Slow path: we are stalled on bandwidth. Account the wall-clock
        // wait so the throttle-stall gauge can expose it.
        let stall_start = origin.elapsed().as_nanos() as u64;
        let mut rounds = 0u32;
        loop {
            self.refill(origin);
            let balance = self.tokens.load(Ordering::Relaxed);
            if balance >= 0 {
                let stalled = (origin.elapsed().as_nanos() as u64).saturating_sub(stall_start);
                stats::global()
                    .local()
                    .throttle_stall_ns
                    .fetch_add(stalled, Ordering::Relaxed);
                obsv::trace::add_stall(obsv::trace::StallKind::Throttle, stalled);
                return;
            }
            rounds += 1;
            if rounds <= 16 {
                std::hint::spin_loop();
            } else if rounds <= 64 {
                std::thread::yield_now();
            } else {
                // Sleep off (most of) the remaining debt; capped so refill
                // keeps being called and wakeups stay responsive.
                let debt_ns = ((-balance) as f64 / self.rate_per_ns) as u64;
                let ns = debt_ns.clamp(1_000, 1_000_000);
                std::thread::sleep(std::time::Duration::from_nanos(ns));
            }
        }
    }

    fn refill(&self, origin: &Instant) {
        let now = origin.elapsed().as_nanos() as u64;
        let last = self.last_refill_ns.load(Ordering::Relaxed);
        if now <= last {
            return;
        }
        if self
            .last_refill_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let add = ((now - last) as f64 * self.rate_per_ns) as i64;
            let cur = self.tokens.load(Ordering::Relaxed);
            let new = (cur + add).min(self.burst);
            if new > cur {
                self.tokens.fetch_add(new - cur, Ordering::Relaxed);
            }
        }
    }
}

/// A small set of XPLine tags modeling the write-combining XPBuffer.
///
/// Lock-free and set-associative: tags live in `AtomicU64` cells grouped
/// into power-of-two sets of up to [`XpBuffer::WAYS`] ways, with per-way
/// LRU stamps drawn from a shared relaxed clock. All accesses are relaxed
/// atomics with no CAS loop; racing threads may occasionally both miss on
/// the same tag or evict each other's fresh entry, slightly *over*-charging
/// media writes — an accepted modeling error (bounded by the race window,
/// see the calibration test) in exchange for a hot path with zero locks.
struct XpBuffer {
    /// `sets * ways` tag cells; `u64::MAX` = empty.
    tags: Vec<AtomicU64>,
    /// LRU stamp per tag cell.
    stamps: Vec<AtomicU64>,
    clock: AtomicU64,
    ways: usize,
    set_mask: u64,
}

impl XpBuffer {
    /// Maximum associativity per set.
    const WAYS: usize = 4;

    fn new(lines: usize) -> Self {
        let lines = lines.max(1).next_power_of_two();
        let ways = Self::WAYS.min(lines);
        let sets = (lines / ways).max(1);
        XpBuffer {
            tags: (0..sets * ways).map(|_| AtomicU64::new(u64::MAX)).collect(),
            stamps: (0..sets * ways).map(|_| AtomicU64::new(0)).collect(),
            clock: AtomicU64::new(0),
            ways,
            set_mask: sets as u64 - 1,
        }
    }

    /// Returns true if the XPLine was already buffered (write combined).
    fn touch(&self, tag: u64) -> bool {
        // Fibonacci-hash the tag so strided flush patterns spread over sets.
        let set = ((tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.set_mask) as usize;
        let base = set * self.ways;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + self.ways {
            if self.tags[i].load(Ordering::Relaxed) == tag {
                self.stamps[i].store(stamp, Ordering::Relaxed);
                return true;
            }
            let s = self.stamps[i].load(Ordering::Relaxed);
            if s < victim_stamp {
                victim_stamp = s;
                victim = i;
            }
        }
        self.tags[victim].store(tag, Ordering::Relaxed);
        self.stamps[victim].store(stamp, Ordering::Relaxed);
        false
    }
}

/// Per-NUMA-node model state.
///
/// Aligned away from neighbouring nodes' state so one node's token-bucket
/// and XPBuffer traffic never false-shares with another's.
#[repr(align(128))]
struct NodeState {
    read_bucket: TokenBucket,
    write_bucket: TokenBucket,
    xpbuffer: XpBuffer,
}

/// The live model runtime built from a config.
struct Runtime {
    config: NvmModelConfig,
    nodes: Vec<NodeState>,
    origin: Instant,
    epoch: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RUNTIME: OnceLock<RwLock<Arc<Runtime>>> = OnceLock::new();
/// Epoch of the currently installed runtime; validates [`RT_CACHE`].
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn runtime_cell() -> &'static RwLock<Arc<Runtime>> {
    RUNTIME.get_or_init(|| RwLock::new(Arc::new(build_runtime(NvmModelConfig::disabled(), 0))))
}

fn build_runtime(config: NvmModelConfig, epoch: u64) -> Runtime {
    // Normalize sizes the fast path masks/indexes with: the CPU-cache sim
    // requires a power of two, and the set-associative XPBuffer rounds up
    // internally. Round up rather than reject so "human" sizes like 1000
    // lines keep working.
    let mut config = config;
    config.cpu_cache_lines = match config.cpu_cache_lines {
        0 => 0,
        n => n.next_power_of_two(),
    };
    config.xpbuffer_lines = config.xpbuffer_lines.max(1).next_power_of_two();
    let dilation = config.time_dilation.max(1.0);
    let read_bw = (config.read_bw as f64 / dilation) as u64;
    let write_bw = (config.write_bw as f64 / dilation) as u64;
    let nodes = (0..MAX_NODES)
        .map(|_| NodeState {
            read_bucket: TokenBucket::new(read_bw.max(1)),
            write_bucket: TokenBucket::new(write_bw.max(1)),
            xpbuffer: XpBuffer::new(config.xpbuffer_lines),
        })
        .collect();
    Runtime {
        config,
        nodes,
        origin: Instant::now(),
        epoch,
    }
}

/// Installs a new model configuration (replaces the previous one globally).
pub fn set_config(config: NvmModelConfig) {
    ENABLED.store(config.enabled, Ordering::Release);
    // Allocate the epoch and publish EPOCH *inside* the write lock so
    // install order always matches epoch order; otherwise two racing
    // `set_config`s could leave EPOCH pointing at a runtime that was
    // overwritten, and every thread's cache would miss forever.
    let mut guard = runtime_cell().write();
    let epoch = EPOCH.load(Ordering::Relaxed) + 1;
    *guard = Arc::new(build_runtime(config, epoch));
    EPOCH.store(epoch, Ordering::Release);
}

/// Returns a copy of the active configuration.
pub fn config() -> NvmModelConfig {
    runtime_cell().read().config.clone()
}

/// Whether the model currently does anything.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

thread_local! {
    /// Per-thread snapshot of the runtime, revalidated against [`EPOCH`].
    static RT_CACHE: RefCell<Option<Arc<Runtime>>> = const { RefCell::new(None) };
}

/// Runs `f` against the current runtime.
///
/// Steady state is one relaxed-ish atomic load (the epoch check) plus a TLS
/// access — no lock, no `Arc` refcount traffic. The global `RwLock` is only
/// taken when this thread's snapshot is stale (first use, or after a
/// [`set_config`]).
///
/// `f` must not reenter `with_runtime` on the same thread (the hook slow
/// paths never do).
#[inline]
fn with_runtime<R>(f: impl FnOnce(&Runtime) -> R) -> R {
    RT_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        match c.as_ref() {
            Some(rt) if rt.epoch == epoch => f(rt),
            _ => {
                let rt = c.insert(runtime_cell().read().clone());
                f(rt)
            }
        }
    })
}

// Per-thread direct-mapped CPU cache simulation: tag array indexed by line id.
thread_local! {
    static CPU_CACHE: RefCell<CpuCache> = const { RefCell::new(CpuCache::empty()) };
}

struct CpuCache {
    tags: Vec<u64>,
    mask: u64,
    epoch: u64,
}

impl CpuCache {
    const fn empty() -> Self {
        CpuCache {
            tags: Vec::new(),
            mask: 0,
            epoch: 0,
        }
    }

    fn ensure(&mut self, lines: usize, epoch: u64) {
        if self.tags.len() != lines || self.epoch != epoch {
            self.tags = vec![u64::MAX; lines];
            self.mask = lines as u64 - 1;
            self.epoch = epoch;
        }
    }

    /// Returns true on hit.
    fn access(&mut self, line: u64) -> bool {
        let idx = (line & self.mask) as usize;
        if self.tags[idx] == line {
            true
        } else {
            self.tags[idx] = line;
            false
        }
    }
}

/// Busy-waits approximately `ns` nanoseconds.
#[inline]
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Minimum dilated wait that is worth a real `thread::sleep` (below this the
/// OS timer slack dominates).
const SLEEP_THRESHOLD_NS: u64 = 100_000;

thread_local! {
    /// Accumulated dilated stall not yet slept (time-dilated mode).
    static PENDING_STALL_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Waits `ns` nanoseconds of *model time* and returns the stall to
/// attribute to the active trace span.
///
/// Without dilation this spins and returns the *measured* wall time of the
/// spin: on an oversubscribed host the spin overshoots its target whenever
/// the thread is descheduled mid-wait, and that overshoot is genuinely part
/// of the stall — attributing only the requested `ns` would leave it
/// unaccounted in the span. With dilation, stalls accumulate per thread
/// and are paid as real `thread::sleep`s once they exceed the OS timer
/// granularity — so every modeled stall costs proportional wall time (cost
/// ratios stay exact) while concurrent threads genuinely overlap their
/// stalls even on a single-core host; there the returned attribution is the
/// model-time `ns`, matching the cost the model charges rather than the
/// batched dilated sleep. The deferral window is bounded by
/// [`SLEEP_THRESHOLD_NS`] of wall time.
#[inline]
fn model_wait(cfg: &NvmModelConfig, ns: u64) -> u64 {
    if ns == 0 {
        return 0;
    }
    let dilation = cfg.time_dilation.max(1.0);
    if dilation <= 1.0 {
        let start = Instant::now();
        spin_ns(ns);
        return (start.elapsed().as_nanos() as u64).max(ns);
    }
    let dilated = (ns as f64 * dilation) as u64;
    PENDING_STALL_NS.with(|p| {
        let total = p.get() + dilated;
        if total >= SLEEP_THRESHOLD_NS {
            p.set(0);
            std::thread::sleep(std::time::Duration::from_nanos(total));
        } else {
            p.set(total);
        }
    });
    ns
}

/// Reports that the running thread read `len` bytes starting at `offset` of
/// pool `pool`.
///
/// Charges media reads for XPLines missed by the simulated CPU cache,
/// directory writes in [`CoherenceMode::Directory`] when the access is
/// remote, throttles against the node's read bandwidth, and injects read
/// latency.
#[inline]
pub fn on_read(pool: PoolId, offset: u64, len: usize) {
    if !enabled() || len == 0 || pool::is_dram(pool) {
        return;
    }
    on_read_slow(pool, offset, len);
}

#[cold]
fn on_read_slow(pool: PoolId, offset: u64, len: usize) {
    with_runtime(|rt| {
        let cfg = &rt.config;
        let pool_node = pool::node_of(pool) as usize;
        let my_node = numa::current_node() as usize;
        let remote = pool_node != my_node;

        // Count distinct cache lines and XPLines missed by the CPU cache.
        let first_line = offset / CACHE_LINE as u64;
        let last_line = (offset + len as u64 - 1) / CACHE_LINE as u64;
        let mut missed_lines = 0u64;
        let mut missed_xplines = 0u64;
        let mut last_xp = u64::MAX;
        CPU_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if cfg.cpu_cache_lines > 0 {
                c.ensure(cfg.cpu_cache_lines, rt.epoch);
            }
            for line in first_line..=last_line {
                let global_line = ((pool as u64) << 48) | line;
                let hit = cfg.cpu_cache_lines > 0 && c.access(global_line);
                if !hit {
                    missed_lines += 1;
                    let xp = line / (XPLINE / CACHE_LINE) as u64;
                    if xp != last_xp {
                        missed_xplines += 1;
                        last_xp = xp;
                    }
                }
            }
        });
        if missed_lines == 0 {
            return;
        }

        let read_bytes = missed_xplines * XPLINE as u64;
        let pstats = pool::stats_of(pool).local();
        let gstats = stats::global().local();
        pstats
            .media_read_bytes
            .fetch_add(read_bytes, Ordering::Relaxed);
        gstats
            .media_read_bytes
            .fetch_add(read_bytes, Ordering::Relaxed);

        // FH5: directory coherence turns remote reads into media writes.
        let mut dir_bytes = 0;
        if remote && cfg.coherence == CoherenceMode::Directory {
            dir_bytes = missed_lines * CACHE_LINE as u64;
            pstats
                .directory_write_bytes
                .fetch_add(dir_bytes, Ordering::Relaxed);
            gstats
                .directory_write_bytes
                .fetch_add(dir_bytes, Ordering::Relaxed);
        }

        if cfg.throttle {
            let node = &rt.nodes[pool_node.min(MAX_NODES - 1)];
            node.read_bucket.acquire(read_bytes, &rt.origin);
            if dir_bytes > 0 {
                node.write_bucket.acquire(dir_bytes, &rt.origin);
            }
        }
        if cfg.inject_latency {
            let mut ns = cfg.read_ns * missed_xplines;
            if remote {
                ns += cfg.remote_extra_ns;
            }
            let waited = model_wait(cfg, ns);
            obsv::trace::add_stall(obsv::trace::StallKind::MediaRead, waited);
        }
    });
}

/// Reports a cache-line flush of `[offset, offset+len)` in pool `pool`
/// (called from [`crate::persist::persist`]).
#[inline]
pub fn on_flush(pool: PoolId, offset: u64, len: usize) {
    if !enabled() || len == 0 || pool::is_dram(pool) {
        return;
    }
    on_flush_slow(pool, offset, len);
}

#[cold]
fn on_flush_slow(pool: PoolId, offset: u64, len: usize) {
    with_runtime(|rt| {
        let cfg = &rt.config;
        let pool_node = pool::node_of(pool) as usize;
        let my_node = numa::current_node() as usize;
        let remote = pool_node != my_node;

        let first_line = offset / CACHE_LINE as u64;
        let last_line = (offset + len as u64 - 1) / CACHE_LINE as u64;
        let n_lines = last_line - first_line + 1;

        // The current-generation clwb also invalidates the line (FH4): the
        // next read of it will miss. Model by evicting from the CPU cache sim.
        if cfg.cpu_cache_lines > 0 {
            CPU_CACHE.with(|c| {
                let mut c = c.borrow_mut();
                c.ensure(cfg.cpu_cache_lines, rt.epoch);
                for line in first_line..=last_line {
                    let global_line = ((pool as u64) << 48) | line;
                    let idx = (global_line & c.mask) as usize;
                    if c.tags[idx] == global_line {
                        c.tags[idx] = u64::MAX;
                    }
                }
            });
        }

        // XPBuffer write combining: count XPLines not already buffered.
        let node = &rt.nodes[pool_node.min(MAX_NODES - 1)];
        let mut media_lines = 0u64;
        let first_xp = first_line / (XPLINE / CACHE_LINE) as u64;
        let last_xp = last_line / (XPLINE / CACHE_LINE) as u64;
        let xp_touched = last_xp - first_xp + 1;
        for xp in first_xp..=last_xp {
            let tag = ((pool as u64) << 48) | xp;
            if !node.xpbuffer.touch(tag) {
                media_lines += 1;
            }
        }
        let write_bytes = media_lines * XPLINE as u64;
        let xp_hits = xp_touched - media_lines;

        let pstats = pool::stats_of(pool).local();
        let gstats = stats::global().local();
        pstats.xpbuffer_hits.fetch_add(xp_hits, Ordering::Relaxed);
        pstats
            .xpbuffer_misses
            .fetch_add(media_lines, Ordering::Relaxed);
        gstats.xpbuffer_hits.fetch_add(xp_hits, Ordering::Relaxed);
        gstats
            .xpbuffer_misses
            .fetch_add(media_lines, Ordering::Relaxed);
        pstats.flushes.fetch_add(n_lines, Ordering::Relaxed);
        pstats
            .media_write_bytes
            .fetch_add(write_bytes, Ordering::Relaxed);
        gstats.flushes.fetch_add(n_lines, Ordering::Relaxed);
        gstats
            .media_write_bytes
            .fetch_add(write_bytes, Ordering::Relaxed);

        if cfg.throttle && write_bytes > 0 {
            node.write_bucket.acquire(write_bytes, &rt.origin);
        }
        if cfg.inject_latency && !cfg.eadr {
            let mut ns = cfg.flush_ns * n_lines;
            if remote {
                ns += cfg.remote_extra_ns;
            }
            let waited = model_wait(cfg, ns);
            obsv::trace::add_stall(obsv::trace::StallKind::Flush, waited);
        }
    });
}

/// Reports a store that dirties NVM without an explicit flush (e.g. lock
/// state mutated by readers, GA2): the line will be written back by cache
/// eviction eventually, consuming write bandwidth but adding no synchronous
/// latency.
#[inline]
pub fn on_dirty(pool: PoolId, offset: u64, len: usize) {
    if !enabled() || len == 0 || pool::is_dram(pool) {
        return;
    }
    on_dirty_slow(pool, offset, len);
}

#[cold]
fn on_dirty_slow(pool: PoolId, offset: u64, len: usize) {
    with_runtime(|rt| {
        let cfg = &rt.config;
        let pool_node = pool::node_of(pool) as usize;
        let node = &rt.nodes[pool_node.min(MAX_NODES - 1)];
        let first_xp = offset / XPLINE as u64;
        let last_xp = (offset + len as u64 - 1) / XPLINE as u64;
        let mut media_lines = 0u64;
        for xp in first_xp..=last_xp {
            if !node.xpbuffer.touch(((pool as u64) << 48) | xp) {
                media_lines += 1;
            }
        }
        let xp_hits = (last_xp - first_xp + 1) - media_lines;
        let pstats = pool::stats_of(pool).local();
        let gstats = stats::global().local();
        pstats.xpbuffer_hits.fetch_add(xp_hits, Ordering::Relaxed);
        pstats
            .xpbuffer_misses
            .fetch_add(media_lines, Ordering::Relaxed);
        gstats.xpbuffer_hits.fetch_add(xp_hits, Ordering::Relaxed);
        gstats
            .xpbuffer_misses
            .fetch_add(media_lines, Ordering::Relaxed);
        let bytes = media_lines * XPLINE as u64;
        if bytes == 0 {
            return;
        }
        pstats.media_write_bytes.fetch_add(bytes, Ordering::Relaxed);
        gstats.media_write_bytes.fetch_add(bytes, Ordering::Relaxed);
        if cfg.throttle {
            node.write_bucket.acquire(bytes, &rt.origin);
        }
    });
}

/// Reports an ordering fence (`sfence` equivalent).
#[inline]
pub fn on_fence() {
    if !enabled() {
        return;
    }
    stats::global()
        .local()
        .fences
        .fetch_add(1, Ordering::Relaxed);
    with_runtime(|rt| {
        if rt.config.inject_latency && !rt.config.eadr {
            let waited = model_wait(&rt.config, rt.config.fence_ns);
            obsv::trace::add_stall(obsv::trace::StallKind::Fence, waited);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{destroy_pool, PmemPool, PoolConfig};

    /// Serializes tests that mutate the global model configuration; without
    /// it, concurrently running tests trample each other's configs.
    static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    fn with_accounting<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock();
        set_config(NvmModelConfig::accounting());
        let r = f();
        set_config(NvmModelConfig::disabled());
        r
    }

    #[test]
    fn read_charges_xpline_granularity() {
        with_accounting(|| {
            let pool = PmemPool::create(PoolConfig::volatile("t-model-read", 1 << 20)).unwrap();
            let before = stats::global().snapshot();
            on_read(pool.id(), 4096, 64); // one cold cache line
            let after = stats::global().snapshot();
            assert_eq!(after.since(&before).media_read_bytes, XPLINE as u64);
            // Second read of the same line hits the simulated CPU cache.
            let before = stats::global().snapshot();
            on_read(pool.id(), 4096, 64);
            let after = stats::global().snapshot();
            assert_eq!(after.since(&before).media_read_bytes, 0);
            destroy_pool(pool.id());
        });
    }

    #[test]
    fn sequential_flushes_write_combine() {
        with_accounting(|| {
            let pool = PmemPool::create(PoolConfig::volatile("t-model-wc", 1 << 20)).unwrap();
            let before = pool.stats().snapshot();
            // Four consecutive cache lines inside one XPLine: one media write.
            for i in 0..4u64 {
                on_flush(pool.id(), 8192 + i * 64, 64);
            }
            let d = pool.stats().snapshot().since(&before);
            assert_eq!(d.media_write_bytes, XPLINE as u64);
            assert_eq!(d.flushes, 4);
            destroy_pool(pool.id());
        });
    }

    #[test]
    fn scattered_flushes_amplify() {
        with_accounting(|| {
            let pool = PmemPool::create(PoolConfig::volatile("t-model-amp", 1 << 20)).unwrap();
            let before = pool.stats().snapshot();
            // 64 lines spread over 64 distinct XPLines, far enough apart to
            // defeat the 16-entry XPBuffer.
            for i in 0..64u64 {
                on_flush(pool.id(), i * 4096, 64);
            }
            let d = pool.stats().snapshot().since(&before);
            assert_eq!(d.media_write_bytes, 64 * XPLINE as u64);
            destroy_pool(pool.id());
        });
    }

    #[test]
    fn directory_mode_charges_remote_reads() {
        let _guard = TEST_LOCK.lock();
        let mut cfg = NvmModelConfig::accounting();
        cfg.coherence = CoherenceMode::Directory;
        cfg.cpu_cache_lines = 0; // every read reaches the media
        set_config(cfg);
        let pool =
            PmemPool::create(PoolConfig::volatile("t-model-dir", 1 << 20).on_node(1)).unwrap();
        numa::pin_thread(0); // thread on node 0, pool on node 1 => remote
        let before = pool.stats().snapshot();
        on_read(pool.id(), 0, 64);
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(d.media_read_bytes, XPLINE as u64);
        assert_eq!(d.directory_write_bytes, CACHE_LINE as u64);
        set_config(NvmModelConfig::disabled());
        destroy_pool(pool.id());
    }

    #[test]
    fn token_bucket_enforces_rate() {
        let origin = Instant::now();
        let bucket = TokenBucket::new(1_000_000_000); // 1 GB/s => 1 byte/ns
        let start = Instant::now();
        // Drain the burst, then 2 MB more must take ~2 ms. 2 MB exceeds the
        // burst size, which the pre-debt-model acquire could never satisfy
        // (it hung here); the debt model pays it off at the refill rate.
        bucket.acquire(bucket.burst as u64, &origin);
        bucket.acquire(2_000_000, &origin);
        bucket.acquire(1, &origin); // must wait out the remaining debt
        assert!(
            start.elapsed().as_micros() >= 1500,
            "throttle too permissive"
        );
    }

    #[test]
    fn token_bucket_try_acquire_sheds_without_debt() {
        let origin = Instant::now();
        // 1 unit/s: refill is negligible for the duration of the test, so
        // exactly the burst is admitted and then admission fails.
        let bucket = TokenBucket::with_burst(1, 4);
        let mut admitted = 0;
        for _ in 0..100 {
            if bucket.try_acquire(1, &origin) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4);
        let balance = bucket.tokens.load(Ordering::Relaxed);
        assert!(!bucket.try_acquire(1, &origin));
        assert_eq!(
            bucket.tokens.load(Ordering::Relaxed),
            balance,
            "failed try_acquire must not dig into debt"
        );
    }

    #[test]
    fn token_bucket_try_acquire_requires_full_coverage() {
        let origin = Instant::now();
        let bucket = TokenBucket::with_burst(1, 8);
        // A batch larger than the balance is shed whole, not admitted on
        // the strength of one leftover token.
        assert!(!bucket.try_acquire(100, &origin));
        assert_eq!(bucket.tokens.load(Ordering::Relaxed), 8);
        // A covered batch is admitted and debits exactly its size.
        assert!(bucket.try_acquire(5, &origin));
        assert_eq!(bucket.tokens.load(Ordering::Relaxed), 3);
        assert!(!bucket.try_acquire(4, &origin), "3 tokens cannot cover 4");
        assert!(bucket.try_acquire(3, &origin));
    }

    #[test]
    fn spin_ns_waits() {
        let t = Instant::now();
        spin_ns(100_000);
        assert!(t.elapsed().as_nanos() >= 100_000);
    }

    #[test]
    fn config_sizes_normalized_to_pow2() {
        let _guard = TEST_LOCK.lock();
        let mut cfg = NvmModelConfig::accounting();
        cfg.cpu_cache_lines = 1000; // not a power of two
        cfg.xpbuffer_lines = 20; // not a power of two
        set_config(cfg);
        let active = config();
        assert_eq!(active.cpu_cache_lines, 1024);
        assert_eq!(active.xpbuffer_lines, 32);
        // The CPU-cache sim masks with `lines - 1`; a non-pow2 size would
        // alias incorrectly. Exercise the path to prove it works.
        let pool = PmemPool::create(PoolConfig::volatile("t-model-pow2", 1 << 20)).unwrap();
        let before = pool.stats().snapshot();
        on_read(pool.id(), 0, 64);
        on_read(pool.id(), 0, 64); // second read must hit the 1024-line cache
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(d.media_read_bytes, XPLINE as u64);
        // cpu_cache_lines = 0 stays 0 (read filtering disabled).
        let mut cfg = NvmModelConfig::accounting();
        cfg.cpu_cache_lines = 0;
        set_config(cfg);
        assert_eq!(config().cpu_cache_lines, 0);
        set_config(NvmModelConfig::disabled());
        destroy_pool(pool.id());
    }

    /// Reference implementation of the seed's fully-associative LRU
    /// XPBuffer, used to calibrate the lock-free set-associative version.
    struct RefLru {
        tags: Vec<u64>,
        stamps: Vec<u64>,
        clock: u64,
    }

    impl RefLru {
        fn new(lines: usize) -> Self {
            RefLru {
                tags: vec![u64::MAX; lines],
                stamps: vec![0; lines],
                clock: 0,
            }
        }

        fn touch(&mut self, tag: u64) -> bool {
            self.clock += 1;
            let mut victim = 0;
            let mut victim_stamp = u64::MAX;
            for i in 0..self.tags.len() {
                if self.tags[i] == tag {
                    self.stamps[i] = self.clock;
                    return true;
                }
                if self.stamps[i] < victim_stamp {
                    victim_stamp = self.stamps[i];
                    victim = i;
                }
            }
            self.tags[victim] = tag;
            self.stamps[victim] = self.clock;
            false
        }
    }

    #[test]
    fn xpbuffer_calibrated_against_lru_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let _guard = TEST_LOCK.lock();
        let mut cfg = NvmModelConfig::accounting();
        cfg.xpbuffer_lines = 16;
        set_config(cfg);
        let pool = PmemPool::create(PoolConfig::volatile("t-model-calib", 1 << 22)).unwrap();
        let id = pool.id();
        let lines_per_xp = (XPLINE / CACHE_LINE) as u64;

        // Sequential flush stream: 1024 consecutive cache lines.
        let seq: Vec<u64> = (0..1024).collect();
        // Random flush stream: 4096 lines over a 1024-XPLine span.
        let mut rng = StdRng::seed_from_u64(42);
        let rand: Vec<u64> = (0..4096)
            .map(|_| rng.gen_range(0..1024 * lines_per_xp))
            .collect();

        for (name, lines) in [("sequential", &seq), ("random", &rand)] {
            set_config({
                let mut c = NvmModelConfig::accounting();
                c.xpbuffer_lines = 16;
                c
            }); // fresh runtime => empty XPBuffer for each pattern
            let mut reference = RefLru::new(16);
            let ref_misses: u64 = lines
                .iter()
                .map(|&l| {
                    let tag = ((id as u64) << 48) | (l / lines_per_xp);
                    u64::from(!reference.touch(tag))
                })
                .sum();
            let before = pool.stats().snapshot();
            for &l in lines {
                on_flush(id, l * CACHE_LINE as u64, CACHE_LINE);
            }
            let got = pool.stats().snapshot().since(&before).media_write_bytes;
            let want = ref_misses * XPLINE as u64;
            let tolerance = want / 10;
            assert!(
                got.abs_diff(want) <= tolerance,
                "{name}: set-associative XPBuffer drifted from LRU reference: \
                 got {got} media-write bytes, reference {want} (±{tolerance})"
            );
        }
        set_config(NvmModelConfig::disabled());
        destroy_pool(id);
    }

    #[test]
    fn striped_totals_exact_under_config_churn() {
        let _guard = TEST_LOCK.lock();
        set_config(NvmModelConfig::accounting());
        let pool = PmemPool::create(PoolConfig::volatile("t-model-churn", 1 << 22)).unwrap();
        let id = pool.id();
        const THREADS: u64 = 4;
        const OPS: u64 = 20_000;
        let span = (1u64 << 22) / CACHE_LINE as u64;
        let before = pool.stats().snapshot();
        let fences_before = stats::global().snapshot().fences;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..OPS {
                        let line = (t * OPS + i) % span;
                        on_flush(id, line * CACHE_LINE as u64, CACHE_LINE);
                        on_fence();
                    }
                });
            }
            // Churn the runtime while workers are accounting: every install
            // must atomically swap the epoch so no hook ever panics, loses
            // its event, or sticks to a stale runtime.
            for i in 0..50 {
                let mut c = NvmModelConfig::accounting();
                c.xpbuffer_lines = if i % 2 == 0 { 16 } else { 64 };
                set_config(c);
                std::thread::yield_now();
            }
        });
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(
            d.flushes,
            THREADS * OPS,
            "striped per-pool flush count must aggregate exactly"
        );
        assert!(
            stats::global().snapshot().fences - fences_before >= THREADS * OPS,
            "global fence count lost increments"
        );
        assert!(d.media_write_bytes > 0);
        set_config(NvmModelConfig::disabled());
        destroy_pool(id);
    }
}
