//! Epoch-based memory reclamation (EBMR) with the two-epoch rule.
//!
//! PACTree §5.6 frees a merged data node only after two epochs: the first
//! epoch guarantees no *new* references can be created (the node is gone
//! from the search layer), the second guarantees every reference created
//! before the first epoch has finished. This module implements the classic
//! scheme: a global epoch counter, per-thread participant records announcing
//! activity, and per-epoch garbage bins.
//!
//! # Example
//!
//! ```
//! let collector = pmem::epoch::Collector::new();
//! let guard = collector.pin();
//! // ... read shared persistent structures ...
//! collector.defer(&guard, || { /* free the node here */ });
//! drop(guard);
//! collector.try_advance(); // eventually runs the deferred closure
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// How many epochs a deferred item must age before it runs (the paper's
/// two-epoch rule).
const GRACE_EPOCHS: u64 = 2;

/// A per-thread participant record.
struct Participant {
    /// Epoch the thread observed when it pinned; only meaningful while active.
    local_epoch: AtomicU64,
    /// Pin nesting depth; non-zero means inside a critical section.
    depth: AtomicU64,
    retired: AtomicBool,
}

type Deferred = Box<dyn FnOnce() + Send>;

/// Garbage deferred at a given epoch.
struct Bin {
    epoch: u64,
    items: Vec<Deferred>,
}

/// An epoch collector shared by all threads touching one structure.
pub struct Collector {
    global_epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    bins: Mutex<Vec<Bin>>,
    /// Deferred items executed so far (for tests and stats).
    executed: AtomicU64,
    /// Deferred items queued so far.
    queued: AtomicU64,
    /// When the current backlog episode started ([`obsv::clock::now_ns`],
    /// clamped ≥ 1); 0 while fully drained. Diagnostic only: a backlog
    /// that keeps aging means nothing is advancing the epoch.
    backlog_since_ns: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static TLS_PARTICIPANTS: std::cell::RefCell<Vec<(usize, Arc<Participant>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector {
            global_epoch: AtomicU64::new(GRACE_EPOCHS + 1),
            participants: Mutex::new(Vec::new()),
            bins: Mutex::new(Vec::new()),
            executed: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            backlog_since_ns: AtomicU64::new(0),
        }
    }

    fn me(&self) -> Arc<Participant> {
        let key = self as *const Collector as usize;
        TLS_PARTICIPANTS.with(|v| {
            let mut v = v.borrow_mut();
            if let Some((_, p)) = v.iter().find(|(k, _)| *k == key) {
                return Arc::clone(p);
            }
            let p = Arc::new(Participant {
                local_epoch: AtomicU64::new(0),
                depth: AtomicU64::new(0),
                retired: AtomicBool::new(false),
            });
            self.participants.lock().push(Arc::clone(&p));
            v.push((key, Arc::clone(&p)));
            p
        })
    }

    /// Marks the calling thread as inside a read-side critical section.
    ///
    /// The returned [`Guard`] unpins on drop. Pins nest: inner pins reuse
    /// the outermost announcement.
    pub fn pin(&self) -> Guard<'_> {
        let me = self.me();
        if me.depth.fetch_add(1, Ordering::SeqCst) == 0 {
            let e = self.global_epoch.load(Ordering::Acquire);
            me.local_epoch.store(e, Ordering::SeqCst);
            // Re-read: if the epoch moved between the load and the
            // announcement, re-announce so try_advance never misses us.
            let e2 = self.global_epoch.load(Ordering::SeqCst);
            if e2 != e {
                me.local_epoch.store(e2, Ordering::SeqCst);
            }
        }
        Guard {
            collector: self,
            participant: me,
        }
    }

    /// Pins the collector with an *owned*, `Send` guard that is not tied to
    /// the calling thread.
    ///
    /// Snapshot handles hold one of these for their whole lifetime: while an
    /// [`OwnedPin`] is live the epoch cannot advance past it, so no memory
    /// retired after the pin was taken can be freed — the versioned nodes a
    /// snapshot may still reach stay allocated. Unlike [`pin`](Self::pin),
    /// the pin uses a dedicated participant record (not the thread-local
    /// one), so it may be created on one thread and dropped on another, and
    /// it does not nest with the calling thread's own pins.
    pub fn pin_owned(&self) -> OwnedPin {
        let p = Arc::new(Participant {
            local_epoch: AtomicU64::new(0),
            depth: AtomicU64::new(1),
            retired: AtomicBool::new(false),
        });
        let e = self.global_epoch.load(Ordering::Acquire);
        p.local_epoch.store(e, Ordering::SeqCst);
        // Same re-read as `pin`: never announce a stale epoch.
        let e2 = self.global_epoch.load(Ordering::SeqCst);
        if e2 != e {
            p.local_epoch.store(e2, Ordering::SeqCst);
        }
        self.participants.lock().push(Arc::clone(&p));
        OwnedPin { participant: p }
    }

    /// Defers `f` until two epochs have passed (so no concurrent reader can
    /// still hold a reference derived from the current epoch).
    pub fn defer(&self, _guard: &Guard<'_>, f: impl FnOnce() + Send + 'static) {
        let epoch = self.global_epoch.load(Ordering::Acquire);
        self.queued.fetch_add(1, Ordering::Relaxed);
        // Stamp the start of a backlog episode (drained -> backlogged).
        let _ = self.backlog_since_ns.compare_exchange(
            0,
            obsv::clock::now_ns().max(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        let mut bins = self.bins.lock();
        match bins.last_mut() {
            Some(bin) if bin.epoch == epoch => bin.items.push(Box::new(f)),
            _ => bins.push(Bin {
                epoch,
                items: vec![Box::new(f)],
            }),
        }
    }

    /// Attempts to advance the global epoch and run sufficiently aged
    /// garbage. Returns the number of deferred items executed.
    pub fn try_advance(&self) -> usize {
        // Attaches to the active request span when an advance runs on the
        // request path (e.g. PDL-ART maintenance inside a traced batch);
        // inert otherwise.
        let _epoch_span = obsv::trace::span_here(obsv::trace::SpanKind::Epoch, 0);
        let epoch = self.global_epoch.load(Ordering::SeqCst);
        {
            let mut parts = self.participants.lock();
            parts.retain(|p| !p.retired.load(Ordering::Relaxed) || Arc::strong_count(p) > 1);
            for p in parts.iter() {
                if p.depth.load(Ordering::SeqCst) > 0
                    && p.local_epoch.load(Ordering::SeqCst) != epoch
                {
                    // Someone is still reading in an older epoch.
                    return self.collect(epoch);
                }
            }
        }
        let _ = self.global_epoch.compare_exchange(
            epoch,
            epoch + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.collect(epoch + 1)
    }

    /// Runs garbage older than `current - GRACE_EPOCHS`.
    fn collect(&self, current: u64) -> usize {
        let ready: Vec<Bin> = {
            let mut bins = self.bins.lock();
            let mut ready = Vec::new();
            bins.retain_mut(|bin| {
                if bin.epoch + GRACE_EPOCHS <= current {
                    ready.push(Bin {
                        epoch: bin.epoch,
                        items: std::mem::take(&mut bin.items),
                    });
                    false
                } else {
                    true
                }
            });
            ready
        };
        let mut n = 0;
        for bin in ready {
            for f in bin.items {
                f();
                n += 1;
            }
        }
        self.executed.fetch_add(n as u64, Ordering::Relaxed);
        if n > 0 && self.executed.load(Ordering::Relaxed) == self.queued.load(Ordering::Relaxed) {
            self.backlog_since_ns.store(0, Ordering::Relaxed);
        }
        n
    }

    /// Repeatedly advances until all currently queued garbage has run.
    ///
    /// Must only be called while no thread holds a [`Guard`]; used on
    /// shutdown and in tests.
    pub fn flush(&self) {
        for _ in 0..(GRACE_EPOCHS + 2) {
            self.try_advance();
        }
    }

    /// Drops all queued garbage *without executing it*.
    ///
    /// Used when the memory the deferred closures would touch has been
    /// invalidated wholesale — e.g. after a simulated crash remounted the
    /// pools from their media image, pending frees refer to pre-crash state
    /// and must not run. Returns the number of discarded items.
    pub fn discard_all(&self) -> usize {
        let bins: Vec<Bin> = std::mem::take(&mut *self.bins.lock());
        self.backlog_since_ns.store(0, Ordering::Relaxed);
        bins.into_iter().map(|b| b.items.len()).sum()
    }

    /// Deferred items executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Deferred items queued so far.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Current global epoch (for diagnostics).
    pub fn epoch(&self) -> u64 {
        self.global_epoch.load(Ordering::Relaxed)
    }

    /// Age (ns) of the current backlog episode: how long deferred garbage
    /// has been waiting since the backlog last became non-empty. 0 while
    /// fully drained. A continuously growing age means nothing is
    /// advancing the epoch (stuck pin or missing maintenance), long
    /// before memory pressure shows.
    pub fn backlog_age_ns(&self) -> u64 {
        let since = self.backlog_since_ns.load(Ordering::Relaxed);
        if since == 0 {
            0
        } else {
            obsv::clock::now_ns().saturating_sub(since)
        }
    }
}

/// RAII token proving the thread is pinned.
pub struct Guard<'c> {
    collector: &'c Collector,
    participant: Arc<Participant>,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.participant.depth.fetch_sub(1, Ordering::SeqCst);
        let _ = self.collector;
    }
}

/// An owned, `Send` epoch pin (see [`Collector::pin_owned`]). Dropping it
/// unpins and retires its dedicated participant record, which the next
/// `try_advance` prunes.
pub struct OwnedPin {
    participant: Arc<Participant>,
}

impl Drop for OwnedPin {
    fn drop(&mut self) {
        self.participant.retired.store(true, Ordering::Relaxed);
        self.participant.depth.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn defer_runs_after_two_epochs() {
        let c = Collector::new();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let g = c.pin();
            let r = Arc::clone(&ran);
            c.defer(&g, move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        // One advance is not enough (two-epoch rule).
        c.try_advance();
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        c.try_advance();
        c.try_advance();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(c.executed(), 1);
    }

    #[test]
    fn backlog_age_tracks_episodes() {
        let c = Collector::new();
        assert_eq!(c.backlog_age_ns(), 0, "fresh collector is drained");
        {
            let g = c.pin();
            c.defer(&g, || {});
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.backlog_age_ns() > 0, "pending garbage ages");
        c.flush();
        assert_eq!(c.executed(), c.queued());
        assert_eq!(c.backlog_age_ns(), 0, "drain resets the episode");
        // A new episode restarts the clock from ~zero.
        {
            let g = c.pin();
            c.defer(&g, || {});
        }
        assert!(c.backlog_age_ns() < 1_000_000_000, "age restarted");
    }

    #[test]
    fn active_reader_blocks_advance() {
        let c = Arc::new(Collector::new());
        let ran = Arc::new(AtomicUsize::new(0));

        // A reader pinned in another thread parks in the old epoch.
        let c2 = Arc::clone(&c);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (tx2, rx2) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            let _g = c2.pin();
            tx.send(()).unwrap();
            rx2.recv().unwrap(); // hold the pin until told
        });
        rx.recv().unwrap();

        {
            let g = c.pin();
            let r = Arc::clone(&ran);
            c.defer(&g, move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..10 {
            c.try_advance();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "reader still pinned");

        tx2.send(()).unwrap();
        h.join().unwrap();
        c.flush();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn owned_pin_blocks_reclamation_across_threads() {
        let c = Arc::new(Collector::new());
        let ran = Arc::new(AtomicUsize::new(0));

        let pin = c.pin_owned();
        {
            let g = c.pin();
            let r = Arc::clone(&ran);
            c.defer(&g, move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..10 {
            c.try_advance();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "owned pin holds the epoch");

        // The pin is Send: move it to another thread and drop it there.
        let h = std::thread::spawn(move || drop(pin));
        h.join().unwrap();
        c.flush();
        assert_eq!(ran.load(Ordering::SeqCst), 1);

        // The dedicated participant is pruned once released.
        assert!(c
            .participants
            .lock()
            .iter()
            .all(|p| !p.retired.load(Ordering::Relaxed)));
    }

    #[test]
    fn many_threads_churn() {
        let c = Arc::new(Collector::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let g = c.pin();
                    let k = Arc::clone(&counter);
                    c.defer(&g, move || {
                        k.fetch_add(1, Ordering::Relaxed);
                    });
                    drop(g);
                    c.try_advance();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.flush();
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 500);
        assert_eq!(c.queued(), 8 * 500);
        assert_eq!(c.executed(), 8 * 500);
    }
}
