//! FPTree: a DRAM-NVM hybrid B+tree baseline (SIGMOD'16, PACTree §2.2.1).
//!
//! Reproduced traits:
//!
//! * **DRAM internal nodes** — reconstructable, so only leaves live in NVM
//!   (fast, but rebuilt at every restart; the recovery cost GC2 mentions).
//! * **Fingerprinted unsorted NVM leaves** — one-byte hashes filter key
//!   comparisons; scans must sort and filter each leaf (FPTree's Figure 13
//!   scan tail-latency problem).
//! * **HTM concurrency** — every operation runs as a simulated hardware
//!   transaction ([`crate::htm`]); capacity aborts grow with data-set size
//!   and thread count, and the global-lock fallback serializes everything
//!   (Figure 6).
//! * **Integer keys only** — like the authors' binary used in the paper.
//!
//! Splits happen synchronously in the critical path (GC2's critique), under
//! an inner-structure write lock inside the transaction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use pactree::lock::VersionLock;
use parking_lot::RwLock;
use pmem::persist;
use pmem::pool::{self, PmemPool, PoolConfig};
use pmem::pptr::PmPtr;
use pmem::{AllocMode, PmemError, Result};

use crate::htm::{Conflict, Htm};

/// Key-value slots per NVM leaf.
pub const FP_LEAF_CAP: usize = 32;

/// An NVM leaf: version lock, validity bitmap, fingerprints, unsorted pairs.
#[repr(C)]
struct FpLeaf {
    lock: VersionLock,
    bitmap: AtomicU64,
    next: AtomicU64,
    fingerprints: [AtomicU8; FP_LEAF_CAP],
    entries: [[AtomicU64; 2]; FP_LEAF_CAP],
}

const LEAF_SIZE: usize = std::mem::size_of::<FpLeaf>();

/// # Safety: `raw` must be an initialized leaf in a live pool.
unsafe fn leaf_of<'a>(raw: u64) -> &'a FpLeaf {
    // SAFETY: per caller contract.
    unsafe { &*(PmPtr::<FpLeaf>::from_raw(raw).as_ptr()) }
}

#[inline]
fn fp_of(key: u64) -> u8 {
    pactree::key::fingerprint_of(&key.to_be_bytes())
}

impl FpLeaf {
    fn live(&self) -> u64 {
        self.bitmap.load(Ordering::Acquire)
    }

    fn find(&self, key: u64) -> Option<usize> {
        // The same runtime-dispatched fingerprint kernel PACTree's data
        // nodes use (32-slot variant), so the baseline comparison stays
        // honest. Candidates are key-verified; callers hold the leaf lock
        // or validate its version afterwards.
        let fp = fp_of(key);
        let mut candidates =
            u64::from(pactree::simd::fingerprint_match32(&self.fingerprints, fp)) & self.live();
        while candidates != 0 {
            let i = candidates.trailing_zeros() as usize;
            candidates &= candidates - 1;
            if self.entries[i][0].load(Ordering::Acquire) == key {
                return Some(i);
            }
        }
        None
    }

    fn free_slot(&self) -> Option<usize> {
        let bm = self.live();
        (0..FP_LEAF_CAP).find(|i| bm & (1 << i) == 0)
    }

    /// Upserts under the leaf lock, requiring a free slot: existing keys get
    /// the FPTree out-of-place update (new slot + atomic bitmap swap); new
    /// keys get a plain slot insert. Returns the previous value.
    fn upsert(&self, key: u64, value: u64) -> Option<u64> {
        let slot = self.free_slot().expect("caller guarantees a free slot");
        if let Some(i) = self.find(key) {
            let old = self.entries[i][1].load(Ordering::Acquire);
            self.entries[slot][0].store(key, Ordering::Relaxed);
            self.entries[slot][1].store(value, Ordering::Relaxed);
            self.fingerprints[slot].store(fp_of(key), Ordering::Release);
            persist::persist(self.entries[slot].as_ptr() as *const u8, 16);
            persist::persist_obj(&self.fingerprints[slot]);
            persist::fence();
            let bm = self.bitmap.load(Ordering::Acquire);
            self.bitmap
                .store((bm & !(1 << i)) | (1 << slot), Ordering::Release);
            persist::persist_obj_fenced(&self.bitmap);
            Some(old)
        } else {
            self.insert_at(slot, key, value);
            None
        }
    }

    /// Writes and publishes a pair (caller holds the leaf lock).
    fn insert_at(&self, slot: usize, key: u64, value: u64) {
        self.entries[slot][0].store(key, Ordering::Relaxed);
        self.entries[slot][1].store(value, Ordering::Relaxed);
        self.fingerprints[slot].store(fp_of(key), Ordering::Release);
        persist::persist(self.entries[slot].as_ptr() as *const u8, 16);
        persist::persist_obj(&self.fingerprints[slot]);
        persist::fence();
        self.bitmap.fetch_or(1 << slot, Ordering::AcqRel);
        persist::persist_obj_fenced(&self.bitmap);
    }
}

/// The FPTree (integer keys only).
pub struct FpTree {
    pool: Arc<PmemPool>,
    /// The HTM facility (stats feed Figure 6).
    pub htm: Htm,
    /// DRAM inner structure: separator (leaf's lower bound) → leaf pointer.
    inner: RwLock<BTreeMap<u64, u64>>,
    approx_len: AtomicUsize,
    /// Per-operation latency histograms (obsv recorder).
    ops: obsv::OpHistograms,
}

impl FpTree {
    /// Creates an FPTree in a fresh pool.
    pub fn create(name: &str, pool_size: usize) -> Result<Arc<FpTree>> {
        let pool = PmemPool::create(PoolConfig {
            name: name.to_string(),
            size: pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: false,
            alloc_mode: AllocMode::CrashConsistent,
        })?;
        let tree = FpTree {
            htm: Htm::new(),
            inner: RwLock::new(BTreeMap::new()),
            approx_len: AtomicUsize::new(0),
            pool,
            ops: obsv::OpHistograms::new(),
        };
        let head = tree.alloc_leaf()?;
        tree.inner.write().insert(0, head);
        tree.pool.allocator().root(0).store(head, Ordering::Release);
        Ok(Arc::new(tree))
    }

    /// Creates an FPTree in a fresh crash-simulating pool (dual-image NVM
    /// emulation), for crash-recovery tests and the crashcheck harness.
    pub fn create_durable(name: &str, pool_size: usize) -> Result<Arc<FpTree>> {
        let pool = PmemPool::create(PoolConfig {
            name: name.to_string(),
            size: pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
        })?;
        let tree = FpTree {
            htm: Htm::new(),
            inner: RwLock::new(BTreeMap::new()),
            approx_len: AtomicUsize::new(0),
            pool,
            ops: obsv::OpHistograms::new(),
        };
        let head = tree.alloc_leaf()?;
        tree.inner.write().insert(0, head);
        tree.pool.allocator().root(0).store(head, Ordering::Release);
        persist::persist_obj_fenced(tree.pool.allocator().root(0));
        Ok(Arc::new(tree))
    }

    /// Reattaches to an existing pool after a restart, rebuilding the DRAM
    /// inner structure by walking the persistent leaf chain — the startup
    /// cost the PACTree paper's GC2 discussion attributes to DRAM-hybrid
    /// indexes ("the internal nodes have to be rebuilt at every startup").
    pub fn recover(name: &str) -> Result<Arc<FpTree>> {
        pactree::lock::bump_global_generation();
        let pool =
            pool::pool_by_name(name).ok_or_else(|| PmemError::PoolNotFound(name.to_string()))?;
        pool.allocator().recover_logs();
        let head = pool.allocator().root(0).load(Ordering::Acquire);
        let tree = FpTree {
            htm: Htm::new(),
            inner: RwLock::new(BTreeMap::new()),
            approx_len: AtomicUsize::new(0),
            pool,
            ops: obsv::OpHistograms::new(),
        };
        tree.complete_torn_splits(head);
        {
            let mut inner = tree.inner.write();
            let mut raw = head;
            let mut total = 0usize;
            while raw != 0 {
                // SAFETY: the persistent leaf chain is intact across restarts.
                let leaf = unsafe { leaf_of(raw) };
                // Separator = the smallest live key (head keeps separator 0).
                let mut min_key = u64::MAX;
                let bm = leaf.live();
                for i in 0..FP_LEAF_CAP {
                    if bm & (1 << i) != 0 {
                        min_key = min_key.min(leaf.entries[i][0].load(Ordering::Acquire));
                        total += 1;
                    }
                }
                let sep = if raw == head { 0 } else { min_key };
                if sep != u64::MAX || raw == head {
                    inner.insert(sep, raw);
                }
                raw = leaf.next.load(Ordering::Acquire);
            }
            tree.approx_len.store(total, Ordering::Relaxed);
        }
        Ok(Arc::new(tree))
    }

    /// Completes splits a crash tore in half (FPTree's µlog recovery duty).
    ///
    /// A split persists the new leaf, links it via `next`, and only then
    /// clears the moved slots from the old leaf's bitmap — three separately
    /// fenced steps. A crash between the link and the bitmap clear leaves
    /// the moved keys live in *both* leaves, which breaks scan order and
    /// duplicates lookups. The chain invariant is that every key in a leaf
    /// is smaller than every live key downstream, so walking the chain from
    /// the tail with a running suffix-minimum and clearing any slot at or
    /// above it finishes exactly the interrupted splits (the downstream
    /// copy is the split's destination and carries the newest value) and is
    /// a no-op on a consistent chain.
    fn complete_torn_splits(&self, head: u64) {
        let mut chain = Vec::new();
        let mut raw = head;
        while raw != 0 {
            chain.push(raw);
            // SAFETY: the persistent leaf chain is intact across restarts.
            raw = unsafe { leaf_of(raw) }.next.load(Ordering::Acquire);
        }
        let mut suffix_min = u64::MAX;
        for &raw in chain.iter().rev() {
            // SAFETY: chain member.
            let leaf = unsafe { leaf_of(raw) };
            let bm = leaf.live();
            let mut stale = 0u64;
            // Slots within one leaf are unsorted peers: compare them only
            // against the *downstream* minimum, never against each other.
            let mut my_min = u64::MAX;
            for i in 0..FP_LEAF_CAP {
                if bm & (1 << i) != 0 {
                    let k = leaf.entries[i][0].load(Ordering::Acquire);
                    if k >= suffix_min {
                        stale |= 1 << i;
                    } else {
                        my_min = my_min.min(k);
                    }
                }
            }
            if stale != 0 {
                leaf.bitmap.store(bm & !stale, Ordering::Release);
                persist::persist_obj_fenced(&leaf.bitmap);
            }
            suffix_min = suffix_min.min(my_min);
        }
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Unregisters the backing pool.
    pub fn destroy(self: Arc<Self>) {
        let id = self.pool.id();
        drop(self);
        pool::destroy_pool(id);
    }

    fn alloc_leaf(&self) -> Result<u64> {
        let ptr = self.pool.allocator().alloc(LEAF_SIZE)?;
        // SAFETY: fresh LEAF_SIZE allocation; zero is a valid initial state
        // except the lock, which needs the current generation.
        unsafe {
            ptr.as_mut_ptr().write_bytes(0, LEAF_SIZE);
            let leaf = &mut *(ptr.as_mut_ptr() as *mut FpLeaf);
            leaf.lock = VersionLock::new();
        }
        persist::persist(ptr.as_ptr(), LEAF_SIZE);
        persist::fence();
        Ok(ptr.raw())
    }

    /// Estimated transaction footprint in bytes: inner-path cache lines plus
    /// leaf plus cold-miss amplification growing with the data-set size
    /// (calibrated so Figure 6's 10M-vs-64M shapes reproduce).
    fn footprint(&self) -> usize {
        let len = self.approx_len.load(Ordering::Relaxed).max(1);
        1024 + (180.0 * (len as f64).cbrt()) as usize
    }

    /// Floor lookup in the DRAM inner structure.
    fn locate(map: &BTreeMap<u64, u64>, key: u64) -> u64 {
        *map.range(..=key)
            .next_back()
            .map(|(_, v)| v)
            .expect("separator 0 always present")
    }

    /// Point lookup.
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let timer = obsv::OpTimer::start();
        let result = self.lookup_inner(key);
        self.ops.finish(obsv::OpKind::Lookup, timer, 0);
        result
    }

    fn lookup_inner(&self, key: u64) -> Option<u64> {
        self.htm.run(self.footprint(), |in_fallback| {
            let inner = if in_fallback {
                self.inner.read()
            } else {
                self.inner.try_read().ok_or(Conflict)?
            };
            let raw = Self::locate(&inner, key);
            // SAFETY: leaves referenced by the inner map are live.
            let leaf = unsafe { leaf_of(raw) };
            pmem::model::on_read(
                PmPtr::<u8>::from_raw(raw).pool_id(),
                PmPtr::<u8>::from_raw(raw).offset(),
                192,
            );
            let token = leaf.lock.read_begin().ok_or(Conflict)?;
            let res = leaf
                .find(key)
                .map(|i| leaf.entries[i][1].load(Ordering::Acquire));
            if !leaf.lock.read_validate(token) {
                return Err(Conflict);
            }
            Ok(res)
        })
    }

    /// Inserts or updates; returns the previous value if present.
    pub fn insert(&self, key: u64, value: u64) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.insert_inner(key, value);
        self.ops.finish(obsv::OpKind::Insert, timer, 0);
        result
    }

    fn insert_inner(&self, key: u64, value: u64) -> Result<Option<u64>> {
        // Fast path: room in the leaf, upsert under the leaf lock.
        let fast: Option<Option<u64>> = self.htm.run(self.footprint(), |in_fallback| {
            let inner = if in_fallback {
                self.inner.read()
            } else {
                self.inner.try_read().ok_or(Conflict)?
            };
            let raw = Self::locate(&inner, key);
            // SAFETY: live leaf.
            let leaf = unsafe { leaf_of(raw) };
            let g = leaf.lock.try_write_lock().ok_or(Conflict)?;
            let res = if leaf.free_slot().is_some() {
                Some(leaf.upsert(key, value))
            } else {
                None // full: take the split path
            };
            drop(g);
            Ok(res)
        });
        if let Some(old) = fast {
            if old.is_none() {
                self.approx_len.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(old);
        }

        // Split path: synchronous split in the critical path (GC2).
        let old = self.htm.run(self.footprint() * 2, |in_fallback| {
            let mut inner = if in_fallback {
                self.inner.write()
            } else {
                self.inner.try_write().ok_or(Conflict)?
            };
            let raw = Self::locate(&inner, key);
            // SAFETY: live leaf.
            let leaf = unsafe { leaf_of(raw) };
            let g = leaf.lock.try_write_lock().ok_or(Conflict)?;
            if leaf.free_slot().is_some() {
                // Raced: space appeared via a concurrent split.
                let old = leaf.upsert(key, value);
                drop(g);
                return Ok(old);
            }
            // Split: move the upper half to a new leaf.
            let mut pairs: Vec<(u64, u64, usize)> = Vec::with_capacity(FP_LEAF_CAP);
            for i in 0..FP_LEAF_CAP {
                if leaf.live() & (1 << i) != 0 {
                    pairs.push((
                        leaf.entries[i][0].load(Ordering::Acquire),
                        leaf.entries[i][1].load(Ordering::Acquire),
                        i,
                    ));
                }
            }
            pairs.sort_unstable();
            let mid = pairs.len() / 2;
            let sep = pairs[mid].0;
            let new_raw = self.alloc_leaf().map_err(|_| Conflict)?;
            // SAFETY: fresh private leaf.
            let new_leaf = unsafe { leaf_of(new_raw) };
            for (j, &(k, v, _)) in pairs[mid..].iter().enumerate() {
                new_leaf.entries[j][0].store(k, Ordering::Relaxed);
                new_leaf.entries[j][1].store(v, Ordering::Relaxed);
                new_leaf.fingerprints[j].store(fp_of(k), Ordering::Relaxed);
            }
            new_leaf
                .bitmap
                .store((1u64 << (pairs.len() - mid)) - 1, Ordering::Release);
            new_leaf
                .next
                .store(leaf.next.load(Ordering::Acquire), Ordering::Release);
            persist::persist(PmPtr::<u8>::from_raw(new_raw).as_ptr(), LEAF_SIZE);
            persist::fence();
            leaf.next.store(new_raw, Ordering::Release);
            persist::persist_obj_fenced(&leaf.next);
            let clear: u64 = pairs[mid..].iter().map(|&(_, _, i)| 1u64 << i).sum();
            let bm = leaf.bitmap.load(Ordering::Acquire);
            leaf.bitmap.store(bm & !clear, Ordering::Release);
            persist::persist_obj_fenced(&leaf.bitmap);
            inner.insert(sep, new_raw);
            // Upsert the pending key into the correct half.
            let old = if key >= sep {
                let ng = new_leaf.lock.try_write_lock().ok_or(Conflict)?;
                let old = new_leaf.upsert(key, value);
                drop(ng);
                old
            } else {
                leaf.upsert(key, value)
            };
            drop(g);
            Ok(old)
        });
        if old.is_none() {
            self.approx_len.fetch_add(1, Ordering::Relaxed);
        }
        Ok(old)
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&self, key: u64) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.remove_inner(key);
        self.ops.finish(obsv::OpKind::Remove, timer, 0);
        result
    }

    fn remove_inner(&self, key: u64) -> Result<Option<u64>> {
        let res = self.htm.run(self.footprint(), |in_fallback| {
            let inner = if in_fallback {
                self.inner.read()
            } else {
                self.inner.try_read().ok_or(Conflict)?
            };
            let raw = Self::locate(&inner, key);
            // SAFETY: live leaf.
            let leaf = unsafe { leaf_of(raw) };
            let g = leaf.lock.try_write_lock().ok_or(Conflict)?;
            let res = leaf.find(key).map(|i| {
                let old = leaf.entries[i][1].load(Ordering::Acquire);
                leaf.bitmap.fetch_and(!(1 << i), Ordering::AcqRel);
                persist::persist_obj_fenced(&leaf.bitmap);
                old
            });
            drop(g);
            Ok(res)
        });
        if res.is_some() {
            self.approx_len.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(res)
    }

    /// Ordered scan: walks the leaf chain, sorting and filtering each leaf
    /// (FPTree's scan overhead, Figure 13).
    pub fn scan(&self, start: u64, count: usize) -> Vec<(u64, u64)> {
        let timer = obsv::OpTimer::start();
        let result = self.scan_inner(start, count);
        self.ops.finish(obsv::OpKind::Scan, timer, 0);
        result
    }

    fn scan_inner(&self, start: u64, count: usize) -> Vec<(u64, u64)> {
        self.htm
            .run(self.footprint() + count.min(65_536) * 16, |in_fallback| {
                let inner = if in_fallback {
                    self.inner.read()
                } else {
                    self.inner.try_read().ok_or(Conflict)?
                };
                let mut raw = Self::locate(&inner, start);
                drop(inner);
                let mut out: Vec<(u64, u64)> = Vec::with_capacity(count.min(4096));
                while raw != 0 {
                    // SAFETY: live leaf chain.
                    let leaf = unsafe { leaf_of(raw) };
                    pmem::model::on_read(
                        PmPtr::<u8>::from_raw(raw).pool_id(),
                        PmPtr::<u8>::from_raw(raw).offset(),
                        LEAF_SIZE,
                    );
                    let token = leaf.lock.read_begin().ok_or(Conflict)?;
                    let mut page: Vec<(u64, u64)> = Vec::new();
                    let bm = leaf.live();
                    for i in 0..FP_LEAF_CAP {
                        if bm & (1 << i) != 0 {
                            let k = leaf.entries[i][0].load(Ordering::Acquire);
                            if k >= start {
                                page.push((k, leaf.entries[i][1].load(Ordering::Acquire)));
                            }
                        }
                    }
                    let next = leaf.next.load(Ordering::Acquire);
                    if !leaf.lock.read_validate(token) {
                        return Err(Conflict);
                    }
                    page.sort_unstable();
                    for p in page {
                        out.push(p);
                        if out.len() >= count {
                            return Ok(out);
                        }
                    }
                    raw = next;
                }
                Ok(out)
            })
    }

    /// Live pairs — O(n), tests only.
    pub fn len(&self) -> usize {
        self.scan_inner(0, usize::MAX >> 1).len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl obsv::OpRecorder for FpTree {
    fn op_histograms(&self) -> &obsv::OpHistograms {
        &self.ops
    }
}

impl std::fmt::Debug for FpTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpTree")
            .field("approx_len", &self.approx_len.load(Ordering::Relaxed))
            .finish()
    }
}

/// Error helper (FPTree ops are infallible once the pool exists, except for
/// allocation).
#[allow(dead_code)]
fn oom() -> PmemError {
    PmemError::OutOfMemory
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn crud_model_check() {
        let t = FpTree::create("fp-crud", 256 << 20).unwrap();
        let mut model = BTreeMap::new();
        let mut x = 3u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let k = x % 8000;
            let old = t.insert(k, i).unwrap();
            assert_eq!(old, model.insert(k, i), "insert {k}");
        }
        for (&k, &v) in &model {
            assert_eq!(t.lookup(k), Some(v), "lookup {k}");
        }
        assert_eq!(t.len(), model.len());
        t.destroy();
    }

    #[test]
    fn scan_sorted_across_leaves() {
        let t = FpTree::create("fp-scan", 128 << 20).unwrap();
        for i in (0..2000u64).rev() {
            t.insert(i * 2, i).unwrap();
        }
        let got: Vec<u64> = t.scan(100, 10).iter().map(|&(k, _)| k).collect();
        assert_eq!(got, (50..60).map(|i| i * 2).collect::<Vec<_>>());
        t.destroy();
    }

    #[test]
    fn removals() {
        let t = FpTree::create("fp-del", 128 << 20).unwrap();
        for i in 0..1000u64 {
            t.insert(i, i).unwrap();
        }
        for i in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(i).unwrap(), Some(i));
        }
        for i in 0..1000u64 {
            assert_eq!(t.lookup(i), (i % 2 == 1).then_some(i));
        }
        t.destroy();
    }

    #[test]
    fn concurrent_mixed() {
        let t = FpTree::create("fp-conc", 256 << 20).unwrap();
        for i in 0..2000u64 {
            t.insert(i, i).unwrap();
        }
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = 10_000 + tid * 100_000 + i;
                    t.insert(k, k).unwrap();
                    assert_eq!(t.lookup(k), Some(k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..2000u64 {
            assert_eq!(t.lookup(i), Some(i));
        }
        assert_eq!(t.len(), 2000 + 6 * 2000);
        // HTM stats were collected.
        assert!(t.htm.stats.transactions.load(Ordering::Relaxed) > 0);
        t.destroy();
    }
}
