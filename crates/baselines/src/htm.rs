//! Software simulation of Intel TSX/HTM (restricted transactional memory).
//!
//! FPTree relies on HTM for internal-node concurrency; the PACTree paper's
//! GC3 analysis (Figure 6) shows HTM collapsing on large data sets and high
//! thread counts because transactions abort on
//!
//! * **capacity** — the read set must fit in L1 (32 KiB); larger footprints
//!   (deeper trees, colder caches) abort with rising probability, amplified
//!   by hyperthread L1 sharing at higher thread counts, and
//! * **conflict** — any concurrent write to a touched cache line aborts the
//!   transaction (we surface real conflicts through `Conflict` returned by
//!   the transaction body when a try-lock or version check fails).
//!
//! After `MAX_RETRIES` aborts the caller falls back to a global lock that
//! suspends all concurrent transactions — the serialization cliff in the
//! paper's Figure 6.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// L1 data cache size per core (Cascade Lake: 32 KiB).
pub const L1_BYTES: usize = 32 * 1024;

/// Transactional retry budget before falling back to the global lock.
pub const MAX_RETRIES: usize = 8;

/// A transaction body signals a data conflict by returning this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict;

/// HTM abort/op statistics (Figure 6's y-axes).
#[derive(Default, Debug)]
pub struct HtmStats {
    pub transactions: AtomicU64,
    pub aborts: AtomicU64,
    pub capacity_aborts: AtomicU64,
    pub conflict_aborts: AtomicU64,
    pub fallbacks: AtomicU64,
}

impl HtmStats {
    /// Aborts per successful operation.
    pub fn aborts_per_op(&self) -> f64 {
        let ops = self.transactions.load(Ordering::Relaxed).max(1);
        self.aborts.load(Ordering::Relaxed) as f64 / ops as f64
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.transactions.store(0, Ordering::Relaxed);
        self.aborts.store(0, Ordering::Relaxed);
        self.capacity_aborts.store(0, Ordering::Relaxed);
        self.conflict_aborts.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
    }
}

thread_local! {
    static RNG: RefCell<u64> = const { RefCell::new(0x9E3779B97F4A7C15) };
}

fn thread_rand() -> u64 {
    RNG.with(|r| {
        let mut x = *r.borrow();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *r.borrow_mut() = x;
        x
    })
}

/// The simulated HTM facility shared by all threads using one structure.
pub struct Htm {
    pub stats: HtmStats,
    /// Threads currently executing a transaction body (used by the
    /// global-fallback drain).
    active: AtomicUsize,
    /// Threads currently inside `run` (including retries) — the L1-sharing
    /// pressure estimate for capacity aborts.
    in_run: AtomicUsize,
    /// Global-fallback lock; while held, all transactions abort-and-wait.
    fallback_held: AtomicBool,
    fallback: Mutex<()>,
}

impl Default for Htm {
    fn default() -> Self {
        Self::new()
    }
}

impl Htm {
    /// Creates an HTM facility.
    pub fn new() -> Htm {
        Htm {
            stats: HtmStats::default(),
            active: AtomicUsize::new(0),
            in_run: AtomicUsize::new(0),
            fallback_held: AtomicBool::new(false),
            fallback: Mutex::new(()),
        }
    }

    /// Probability (×2^32) that a transaction with `footprint` bytes of
    /// read/write set aborts on capacity, given current concurrency.
    fn capacity_abort_threshold(&self, footprint: usize) -> u64 {
        let pressure = self.in_run.load(Ordering::Relaxed).max(1);
        // Effective L1 share shrinks with concurrent transactions (SMT
        // sharing + cache pollution).
        let effective = L1_BYTES / pressure.min(4);
        let over = footprint as f64 / effective as f64;
        if over < 0.2 {
            // Small transactions still abort occasionally (interrupts etc.).
            return (u32::MAX as u64) / 2048;
        }
        let p = (over - 0.2).clamp(0.0, 0.95);
        (p * u32::MAX as f64) as u64
    }

    /// Runs `body` transactionally. `footprint` estimates the bytes the
    /// transaction touches (the capacity-abort driver). The body returns
    /// `Err(Conflict)` to signal a data conflict (try-lock failure, version
    /// mismatch), which aborts and retries; after [`MAX_RETRIES`] aborts the
    /// body runs under the global fallback lock (`in_fallback = true`).
    pub fn run<R>(&self, footprint: usize, mut body: impl FnMut(bool) -> Result<R, Conflict>) -> R {
        self.stats.transactions.fetch_add(1, Ordering::Relaxed);
        let _in_run = InRun::enter(&self.in_run);
        for _ in 0..MAX_RETRIES {
            // Announce, then check the fallback flag (Dekker-style with the
            // fallback holder's set-flag-then-read-active): a transaction
            // that sees the flag clear is guaranteed to be waited for.
            self.active.fetch_add(1, Ordering::SeqCst);
            if self.fallback_held.load(Ordering::SeqCst) {
                self.active.fetch_sub(1, Ordering::SeqCst);
                while self.fallback_held.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                self.stats.aborts.fetch_add(1, Ordering::Relaxed);
                self.stats.conflict_aborts.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let threshold = self.capacity_abort_threshold(footprint);
            if (thread_rand() & u32::MAX as u64) < threshold {
                self.active.fetch_sub(1, Ordering::SeqCst);
                self.stats.aborts.fetch_add(1, Ordering::Relaxed);
                self.stats.capacity_aborts.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let result = body(false);
            self.active.fetch_sub(1, Ordering::SeqCst);
            match result {
                Ok(r) => return r,
                Err(Conflict) => {
                    self.stats.aborts.fetch_add(1, Ordering::Relaxed);
                    self.stats.conflict_aborts.fetch_add(1, Ordering::Relaxed);
                    std::hint::spin_loop();
                }
            }
        }
        // Fallback: serialize the world.
        self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
        let _g = self.fallback.lock();
        self.fallback_held.store(true, Ordering::SeqCst);
        // Wait for in-flight transactions to drain.
        while self.active.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        let r = loop {
            match body(true) {
                Ok(r) => break r,
                Err(Conflict) => std::thread::yield_now(),
            }
        };
        self.fallback_held.store(false, Ordering::SeqCst);
        r
    }
}

/// RAII counter for `Htm::in_run`.
struct InRun<'a>(&'a AtomicUsize);

impl<'a> InRun<'a> {
    fn enter(c: &'a AtomicUsize) -> InRun<'a> {
        c.fetch_add(1, Ordering::Relaxed);
        InRun(c)
    }
}

impl Drop for InRun<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn small_transactions_mostly_commit() {
        let htm = Htm::new();
        for _ in 0..1000 {
            let v = htm.run(256, |_| Ok::<_, Conflict>(42));
            assert_eq!(v, 42);
        }
        assert!(htm.stats.aborts_per_op() < 0.1);
    }

    #[test]
    fn large_footprint_aborts_often() {
        let htm = Htm::new();
        for _ in 0..500 {
            htm.run(L1_BYTES * 2, |_| Ok::<_, Conflict>(()));
        }
        assert!(
            htm.stats.aborts_per_op() > 0.5,
            "got {}",
            htm.stats.aborts_per_op()
        );
        assert!(htm.stats.fallbacks.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn conflicts_retry_then_fall_back() {
        let htm = Htm::new();
        let mut calls = 0;
        let v = htm.run(64, |in_fallback| {
            calls += 1;
            if in_fallback {
                Ok(7)
            } else {
                Err(Conflict)
            }
        });
        assert_eq!(v, 7);
        assert_eq!(calls, MAX_RETRIES + 1);
        assert_eq!(htm.stats.fallbacks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_counter_is_exact_under_fallbacks() {
        let htm = Arc::new(Htm::new());
        let counter = Arc::new(parking_lot::Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let htm = Arc::clone(&htm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    htm.run(20_000, |_| {
                        let Some(mut g) = counter.try_lock() else {
                            return Err(Conflict);
                        };
                        *g += 1;
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 2000);
    }
}
