//! BzTree: a lock-free persistent B+tree on PMwCAS (VLDB'18, PACTree §2.2.1).
//!
//! Faithful to the traits the PACTree paper measures:
//!
//! * **Lock-free**: every structural change goes through [`crate::pmwcas`];
//!   readers never block and never write lock state.
//! * **Append-only leaves**: an insert reserves a record slot with a 2-word
//!   PMwCAS (status word + record metadata), writes the record, then makes
//!   it visible — a descriptor allocation plus ≥15 flushes per insert (GA4),
//!   and, for string keys, another allocation per key (GA3: ~40% of time in
//!   the allocator).
//! * **Copy-on-write internal changes**: consolidation/split builds new
//!   nodes and swaps one child pointer with PMwCAS; internal keys are
//!   immutable (only child pointer words change in place).
//! * **Scan snapshotting**: scans snapshot and sort each leaf (the paper's
//!   explanation of BzTree's poor range performance).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem::epoch::{Collector, Guard};
use pmem::persist;
use pmem::pool::{self, PmemPool, PoolConfig};
use pmem::pptr::PmPtr;
use pmem::{AllocMode, PmemError, Result};

use crate::fastfair::KeyMode;
use crate::pmwcas::{read_word, PmwCasRunner};

/// Records per leaf node.
pub const LEAF_CAP: usize = 64;
/// Separators per internal node.
pub const INNER_CAP: usize = 32;
/// Consolidation that still leaves more than this many live records splits
/// the leaf in two.
const SPLIT_THRESHOLD: usize = LEAF_CAP * 3 / 4;

// Status word layout (bit 0 always clear — PMwCAS targets):
//   bits 1..8  : record count
//   bit  8     : frozen
#[inline]
fn st_count(s: u64) -> usize {
    ((s >> 1) & 0x7F) as usize
}
#[inline]
fn st_frozen(s: u64) -> bool {
    s & (1 << 8) != 0
}
#[inline]
fn st_with_count(s: u64, c: usize) -> u64 {
    (s & !(0x7F << 1)) | ((c as u64) << 1)
}
const ST_FROZEN_BIT: u64 = 1 << 8;

// Record metadata word (bit 0 clear):
const META_RESERVED: u64 = 1 << 1;
const META_VISIBLE: u64 = 1 << 2;
const META_DELETED: u64 = 1 << 3;

/// Node kind tag (first word of both node types).
const KIND_LEAF: u64 = 1;
const KIND_INNER: u64 = 2;

/// A leaf: status word + per-record (meta, key word, value) triples.
#[repr(C)]
struct Leaf {
    kind: u64,
    status: AtomicU64,
    records: [[AtomicU64; 3]; LEAF_CAP],
}

/// An internal node: immutable sorted keys, mutable child pointer words.
#[repr(C)]
struct Inner {
    kind: u64,
    count: u64,
    keys: [u64; INNER_CAP],
    /// children[i] covers keys < keys[i]; children[count] is the rightmost.
    children: [AtomicU64; INNER_CAP + 1],
}

const LEAF_SIZE: usize = std::mem::size_of::<Leaf>();
const INNER_SIZE: usize = std::mem::size_of::<Inner>();

/// Dereferences the node-kind tag.
///
/// # Safety
///
/// `raw` must point to an initialized node.
unsafe fn kind_of(raw: u64) -> u64 {
    // SAFETY: both node types start with the kind word.
    unsafe { *(PmPtr::<u64>::from_raw(raw).as_ptr()) }
}

/// # Safety: `raw` must be an initialized leaf.
unsafe fn leaf_of<'a>(raw: u64) -> &'a Leaf {
    // SAFETY: per caller contract.
    unsafe { &*(PmPtr::<Leaf>::from_raw(raw).as_ptr()) }
}

/// # Safety: `raw` must be an initialized inner node.
unsafe fn inner_of<'a>(raw: u64) -> &'a Inner {
    // SAFETY: per caller contract.
    unsafe { &*(PmPtr::<Inner>::from_raw(raw).as_ptr()) }
}

/// The BzTree.
pub struct BzTree {
    pool: Arc<PmemPool>,
    mode: KeyMode,
    collector: Arc<Collector>,
    mwcas: PmwCasRunner,
    /// Per-operation latency histograms (obsv recorder).
    ops: obsv::OpHistograms,
}

impl BzTree {
    /// Creates a BzTree in a fresh pool.
    pub fn create(name: &str, pool_size: usize, mode: KeyMode) -> Result<Arc<BzTree>> {
        let pool = PmemPool::create(PoolConfig {
            name: name.to_string(),
            size: pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: false,
            alloc_mode: AllocMode::CrashConsistent,
        })?;
        let collector = Arc::new(Collector::new());
        let tree = BzTree {
            mwcas: PmwCasRunner::new(Arc::clone(&pool), Arc::clone(&collector)),
            pool,
            mode,
            collector,
            ops: obsv::OpHistograms::new(),
        };
        let root = tree.alloc_leaf()?;
        tree.pool.allocator().root(0).store(root, Ordering::Release);
        persist::persist_obj_fenced(tree.pool.allocator().root(0));
        Ok(Arc::new(tree))
    }

    /// Creates a BzTree in a fresh pool with crash simulation enabled.
    pub fn create_durable(name: &str, pool_size: usize, mode: KeyMode) -> Result<Arc<BzTree>> {
        let pool = PmemPool::create(PoolConfig {
            name: name.to_string(),
            size: pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
        })?;
        let collector = Arc::new(Collector::new());
        let tree = BzTree {
            mwcas: PmwCasRunner::new(Arc::clone(&pool), Arc::clone(&collector)),
            pool,
            mode,
            collector,
            ops: obsv::OpHistograms::new(),
        };
        let root = tree.alloc_leaf()?;
        tree.pool.allocator().root(0).store(root, Ordering::Release);
        persist::persist_obj_fenced(tree.pool.allocator().root(0));
        Ok(Arc::new(tree))
    }

    /// Reattaches to a crashed-and-remounted pool, completing every PMwCAS
    /// the crash interrupted: any word still holding a marked descriptor
    /// pointer is rolled forward (status `SUCCEEDED`) or back (undecided or
    /// failed) via [`crate::pmwcas::recover_word`]. Descriptors that never
    /// finished are abandoned in place (their space leaks until an offline
    /// sweep, like pre-crash freelist contents — see DESIGN.md).
    pub fn recover(name: &str, mode: KeyMode) -> Result<Arc<BzTree>> {
        let pool =
            pool::pool_by_name(name).ok_or_else(|| PmemError::PoolNotFound(name.to_string()))?;
        pool.allocator().recover_logs();
        let collector = Arc::new(Collector::new());
        let tree = BzTree {
            mwcas: PmwCasRunner::new(Arc::clone(&pool), Arc::clone(&collector)),
            pool,
            mode,
            collector,
            ops: obsv::OpHistograms::new(),
        };
        tree.scrub_descriptors();
        Ok(Arc::new(tree))
    }

    /// Walks the tree scrubbing every PMwCAS-managed word (root cell, inner
    /// child pointers, leaf status and record metadata). Defensive against
    /// torn crash images: node pointers are bounds-checked, counts clamped.
    fn scrub_descriptors(&self) {
        let root = crate::pmwcas::recover_word(&self.pool, self.root_cell());
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(raw) = stack.pop() {
            if raw == 0 || !seen.insert(raw) {
                continue;
            }
            match self.checked_kind(raw) {
                Some(KIND_LEAF) => {
                    // SAFETY: bounds-checked by `checked_kind`.
                    let leaf = unsafe { leaf_of(raw) };
                    crate::pmwcas::recover_word(&self.pool, &leaf.status);
                    for i in 0..LEAF_CAP {
                        crate::pmwcas::recover_word(&self.pool, &leaf.records[i][0]);
                    }
                }
                Some(KIND_INNER) => {
                    // SAFETY: bounds-checked by `checked_kind`.
                    let inner = unsafe { inner_of(raw) };
                    let n = (inner.count as usize).min(INNER_CAP);
                    for i in 0..=n {
                        stack.push(crate::pmwcas::recover_word(&self.pool, &inner.children[i]));
                    }
                }
                _ => {} // garbage pointer or torn node: unreachable data
            }
        }
        persist::fence();
    }

    /// Reads a node's kind tag if `raw` points at a plausible node of this
    /// pool (either node type fits in bounds).
    fn checked_kind(&self, raw: u64) -> Option<u64> {
        let p = PmPtr::<u64>::from_raw(raw);
        if p.is_null() || p.pool_id() != self.pool.id() {
            return None;
        }
        let off = p.offset();
        let max = LEAF_SIZE.max(INNER_SIZE) as u64;
        if !off.is_multiple_of(8) || off + max > self.pool.size() as u64 {
            return None;
        }
        // SAFETY: bounds-checked above.
        Some(unsafe { *p.as_ptr() })
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Unregisters the backing pool.
    pub fn destroy(self: Arc<Self>) {
        let id = self.pool.id();
        drop(self);
        pool::destroy_pool(id);
    }

    fn root_cell(&self) -> &AtomicU64 {
        self.pool.allocator().root(0)
    }

    fn alloc_leaf(&self) -> Result<u64> {
        let ptr = self.pool.allocator().alloc(LEAF_SIZE)?;
        // SAFETY: fresh LEAF_SIZE allocation.
        unsafe {
            ptr.as_mut_ptr().write_bytes(0, LEAF_SIZE);
            (ptr.as_mut_ptr() as *mut u64).write(KIND_LEAF);
        }
        persist::persist(ptr.as_ptr(), LEAF_SIZE);
        persist::fence();
        Ok(ptr.raw())
    }

    // -- Key encoding (same scheme as FastFair) ------------------------------

    fn encode_key(&self, key: &[u8]) -> Result<u64> {
        match self.mode {
            KeyMode::Integer => {
                let arr: [u8; 8] = key
                    .try_into()
                    .map_err(|_| PmemError::Corruption("integer mode needs 8-byte keys"))?;
                let v = u64::from_be_bytes(arr);
                if v >= u64::MAX - 1 {
                    return Err(PmemError::Corruption("key too large for encoding"));
                }
                Ok((v + 1) << 1) // keep bit 0 clear for PMwCAS-adjacent words
            }
            KeyMode::String => {
                let ptr = self.pool.allocator().alloc(4 + key.len())?;
                // SAFETY: fresh allocation.
                unsafe {
                    (ptr.as_mut_ptr() as *mut u32).write(key.len() as u32);
                    std::ptr::copy_nonoverlapping(key.as_ptr(), ptr.as_mut_ptr().add(4), key.len());
                }
                persist::persist(ptr.as_ptr(), 4 + key.len());
                Ok(ptr.raw())
            }
        }
    }

    fn cmp_key(&self, word: u64, key: &[u8]) -> std::cmp::Ordering {
        match self.mode {
            KeyMode::Integer => {
                let stored = ((word >> 1) - 1).to_be_bytes();
                stored.as_slice().cmp(key)
            }
            KeyMode::String => {
                let p = PmPtr::<u8>::from_raw(word);
                pmem::model::on_read(p.pool_id(), p.offset(), 64);
                // SAFETY: key blocks are immutable.
                let len = unsafe { *(p.as_ptr() as *const u32) } as usize;
                // SAFETY: block is len + 4 bytes.
                let bytes = unsafe { std::slice::from_raw_parts(p.as_ptr().add(4), len) };
                bytes.cmp(key)
            }
        }
    }

    fn decode_key(&self, word: u64) -> Vec<u8> {
        match self.mode {
            KeyMode::Integer => ((word >> 1) - 1).to_be_bytes().to_vec(),
            KeyMode::String => {
                let p = PmPtr::<u8>::from_raw(word);
                // SAFETY: immutable key block.
                let len = unsafe { *(p.as_ptr() as *const u32) } as usize;
                // SAFETY: block is len + 4 bytes.
                unsafe { std::slice::from_raw_parts(p.as_ptr().add(4), len) }.to_vec()
            }
        }
    }

    // -- Traversal ------------------------------------------------------------

    /// Descends to the leaf covering `key`, recording `(inner, child_idx)`
    /// along the way.
    fn descend(&self, _guard: &Guard<'_>, key: &[u8]) -> (Vec<(u64, usize)>, u64) {
        let mut path = Vec::new();
        let mut raw = read_word(self.root_cell());
        loop {
            pmem::model::on_read(
                PmPtr::<u8>::from_raw(raw).pool_id(),
                PmPtr::<u8>::from_raw(raw).offset(),
                512,
            );
            // SAFETY: nodes reached through PMwCAS-read words are live
            // (epoch-pinned).
            if unsafe { kind_of(raw) } == KIND_LEAF {
                return (path, raw);
            }
            // SAFETY: inner node.
            let inner = unsafe { inner_of(raw) };
            let n = inner.count as usize;
            let mut idx = n;
            for i in 0..n {
                if self.cmp_key(inner.keys[i], key) == std::cmp::Ordering::Greater {
                    idx = i;
                    break;
                }
            }
            path.push((raw, idx));
            raw = read_word(&inner.children[idx]);
        }
    }

    /// Finds the newest visible record for `key` in a leaf.
    fn leaf_find(&self, leaf: &Leaf, key: &[u8]) -> Option<(usize, u64)> {
        let s = read_word(&leaf.status);
        let n = st_count(s);
        for i in (0..n).rev() {
            let meta = leaf.records[i][0].load(Ordering::Acquire);
            if meta & META_VISIBLE == 0 {
                continue;
            }
            let kw = leaf.records[i][1].load(Ordering::Acquire);
            if self.cmp_key(kw, key) == std::cmp::Ordering::Equal {
                if meta & META_DELETED != 0 {
                    return None; // newest record is a tombstone-marked one
                }
                return Some((i, leaf.records[i][2].load(Ordering::Acquire)));
            }
        }
        None
    }

    // -- Public operations ------------------------------------------------------

    /// Point lookup (lock-free).
    pub fn lookup(&self, key: &[u8]) -> Option<u64> {
        let timer = obsv::OpTimer::start();
        let result = self.lookup_inner(key);
        self.ops.finish(obsv::OpKind::Lookup, timer, 0);
        result
    }

    fn lookup_inner(&self, key: &[u8]) -> Option<u64> {
        let guard = self.collector.pin();
        let (_, leaf_raw) = self.descend(&guard, key);
        // SAFETY: live leaf.
        let leaf = unsafe { leaf_of(leaf_raw) };
        self.leaf_find(leaf, key).map(|(_, v)| v)
    }

    /// Inserts or updates; returns the previous value if present.
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.insert_inner(key, value);
        self.ops.finish(obsv::OpKind::Insert, timer, 0);
        result
    }

    fn insert_inner(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let guard = self.collector.pin();
        loop {
            let (path, leaf_raw) = self.descend(&guard, key);
            // SAFETY: live leaf.
            let leaf = unsafe { leaf_of(leaf_raw) };
            let s = read_word(&leaf.status);
            if st_frozen(s) {
                self.consolidate(&guard, &path, leaf_raw)?;
                continue;
            }
            let old = self.leaf_find(leaf, key).map(|(_, v)| v);
            let n = st_count(s);
            if n == LEAF_CAP {
                self.freeze_and_consolidate(&guard, &path, leaf_raw, s)?;
                continue;
            }
            // Reserve slot n with a 2-word PMwCAS (status count bump +
            // metadata reservation).
            let s2 = st_with_count(s, n + 1);
            if !self.mwcas.execute(
                &guard,
                &[
                    (&leaf.status, s, s2),
                    (&leaf.records[n][0], 0, META_RESERVED),
                ],
            )? {
                continue;
            }
            // Write the record payload, persist, then publish.
            let kw = self.encode_key(key)?;
            leaf.records[n][1].store(kw, Ordering::Release);
            leaf.records[n][2].store(value, Ordering::Release);
            persist::persist(leaf.records[n].as_ptr() as *const u8, 24);
            persist::fence();
            leaf.records[n][0].store(META_VISIBLE, Ordering::Release);
            persist::persist_obj_fenced(&leaf.records[n][0]);
            // Freeze race: a concurrent consolidation may have collected the
            // records before our publish and missed this one. Re-execute the
            // upsert in that case (duplicates are newest-wins, so a benign
            // re-insert of the same value is safe).
            if st_frozen(read_word(&leaf.status)) {
                continue;
            }
            return Ok(old);
        }
    }

    /// Removes `key`; returns its value if present (tombstones the newest
    /// visible record; space is reclaimed at consolidation).
    pub fn remove(&self, key: &[u8]) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.remove_inner(key);
        self.ops.finish(obsv::OpKind::Remove, timer, 0);
        result
    }

    fn remove_inner(&self, key: &[u8]) -> Result<Option<u64>> {
        let guard = self.collector.pin();
        loop {
            let (_, leaf_raw) = self.descend(&guard, key);
            // SAFETY: live leaf.
            let leaf = unsafe { leaf_of(leaf_raw) };
            let s = read_word(&leaf.status);
            if st_frozen(s) {
                // A consolidation is in flight; retry against the new leaf.
                std::thread::yield_now();
                continue;
            }
            let Some((slot, value)) = self.leaf_find(leaf, key) else {
                return Ok(None);
            };
            let meta = leaf.records[slot][0].load(Ordering::Acquire);
            if meta & META_DELETED != 0 {
                return Ok(None);
            }
            if leaf.records[slot][0]
                .compare_exchange(
                    meta,
                    meta | META_DELETED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                persist::persist_obj_fenced(&leaf.records[slot][0]);
                return Ok(Some(value));
            }
        }
    }

    /// Ordered scan: snapshots and sorts each leaf (the paper's BzTree scan
    /// overhead).
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let timer = obsv::OpTimer::start();
        let guard = self.collector.pin();
        let mut out = Vec::with_capacity(count.min(4096));
        let root = read_word(self.root_cell());
        self.scan_rec(&guard, root, start, count, &mut out);
        out.truncate(count);
        self.ops.finish(obsv::OpKind::Scan, timer, 0);
        out
    }

    // `guard` witnesses that the caller holds an epoch pin for the whole
    // recursive descent; it is only threaded through, hence the allow.
    #[allow(clippy::only_used_in_recursion)]
    fn scan_rec(
        &self,
        guard: &Guard<'_>,
        raw: u64,
        start: &[u8],
        count: usize,
        out: &mut Vec<(Vec<u8>, u64)>,
    ) -> bool {
        if out.len() >= count {
            return false;
        }
        // SAFETY: live node (epoch-pinned).
        if unsafe { kind_of(raw) } == KIND_LEAF {
            // SAFETY: leaf.
            let leaf = unsafe { leaf_of(raw) };
            pmem::model::on_read(
                PmPtr::<u8>::from_raw(raw).pool_id(),
                PmPtr::<u8>::from_raw(raw).offset(),
                LEAF_SIZE,
            );
            // Snapshot: newest-wins dedup, then sort.
            let s = read_word(&leaf.status);
            let n = st_count(s);
            let mut seen: Vec<(Vec<u8>, Option<u64>)> = Vec::new();
            for i in (0..n).rev() {
                let meta = leaf.records[i][0].load(Ordering::Acquire);
                if meta & META_VISIBLE == 0 {
                    continue;
                }
                let k = self.decode_key(leaf.records[i][1].load(Ordering::Acquire));
                if seen.iter().any(|(sk, _)| sk == &k) {
                    continue;
                }
                let v =
                    (meta & META_DELETED == 0).then(|| leaf.records[i][2].load(Ordering::Acquire));
                seen.push((k, v));
            }
            seen.sort();
            for (k, v) in seen {
                if k.as_slice() >= start {
                    if let Some(v) = v {
                        out.push((k, v));
                        if out.len() >= count {
                            return false;
                        }
                    }
                }
            }
            return true;
        }
        // SAFETY: inner node.
        let inner = unsafe { inner_of(raw) };
        let n = inner.count as usize;
        // First child that can contain keys >= start: the one covering the
        // slot where `start` would land (same rule as `descend`).
        let mut idx = n;
        for i in 0..n {
            if self.cmp_key(inner.keys[i], start) == std::cmp::Ordering::Greater {
                idx = i;
                break;
            }
        }
        for j in idx..=n {
            let child = read_word(&inner.children[j]);
            if !self.scan_rec(guard, child, start, count, out) {
                return false;
            }
        }
        true
    }

    // -- Consolidation and splits -------------------------------------------------

    fn freeze_and_consolidate(
        &self,
        guard: &Guard<'_>,
        path: &[(u64, usize)],
        leaf_raw: u64,
        s: u64,
    ) -> Result<()> {
        // SAFETY: live leaf.
        let leaf = unsafe { leaf_of(leaf_raw) };
        // Freeze with a 1-word PMwCAS; losing the race is fine (someone else
        // froze it).
        let _ = self
            .mwcas
            .execute(guard, &[(&leaf.status, s, s | ST_FROZEN_BIT)])?;
        self.consolidate(guard, path, leaf_raw)
    }

    /// Rebuilds a frozen leaf into one or two compacted leaves and swaps the
    /// parent child pointer via PMwCAS.
    fn consolidate(&self, guard: &Guard<'_>, path: &[(u64, usize)], leaf_raw: u64) -> Result<()> {
        // SAFETY: live (frozen) leaf.
        let leaf = unsafe { leaf_of(leaf_raw) };
        let s = read_word(&leaf.status);
        if !st_frozen(s) {
            return Ok(()); // already replaced by a helper
        }
        // Collect live records: newest wins, tombstones drop out.
        let n = st_count(s);
        // Newest record wins per key; deleted newest drops the key.
        // Key bytes -> Some((key word, value)) for live, None for tombstoned.
        type Newest = Vec<(Vec<u8>, Option<(u64, u64)>)>;
        let mut newest: Newest = Vec::new();
        for i in (0..n).rev() {
            let meta = leaf.records[i][0].load(Ordering::Acquire);
            if meta & META_VISIBLE == 0 {
                continue;
            }
            let kw = leaf.records[i][1].load(Ordering::Acquire);
            let k = self.decode_key(kw);
            if newest.iter().any(|(lk, _)| lk == &k) {
                continue;
            }
            let payload = (meta & META_DELETED == 0)
                .then(|| (kw, leaf.records[i][2].load(Ordering::Acquire)));
            newest.push((k, payload));
        }
        let mut live: Vec<(Vec<u8>, u64, u64)> = newest
            .into_iter()
            .filter_map(|(k, p)| p.map(|(kw, v)| (k, kw, v)))
            .collect();
        live.sort();

        if live.len() > SPLIT_THRESHOLD {
            // Two new leaves + separator into the parent.
            let mid = live.len() / 2;
            let left = self.build_leaf(&live[..mid])?;
            let right = self.build_leaf(&live[mid..])?;
            let sep = live[mid].1;
            self.install_split(guard, path, leaf_raw, left, sep, right)?;
        } else {
            let newleaf = self.build_leaf(&live)?;
            self.install_replace(guard, path, leaf_raw, newleaf)?;
        }
        Ok(())
    }

    fn build_leaf(&self, records: &[(Vec<u8>, u64, u64)]) -> Result<u64> {
        let raw = self.alloc_leaf()?;
        // SAFETY: fresh private leaf.
        let leaf = unsafe { leaf_of(raw) };
        for (i, (_, kw, v)) in records.iter().enumerate() {
            leaf.records[i][0].store(META_VISIBLE, Ordering::Relaxed);
            leaf.records[i][1].store(*kw, Ordering::Relaxed);
            leaf.records[i][2].store(*v, Ordering::Relaxed);
        }
        leaf.status
            .store(st_with_count(0, records.len()), Ordering::Release);
        persist::persist(PmPtr::<u8>::from_raw(raw).as_ptr(), LEAF_SIZE);
        persist::fence();
        Ok(raw)
    }

    /// Swaps `old` for `new` in the parent (or root cell).
    fn install_replace(
        &self,
        guard: &Guard<'_>,
        path: &[(u64, usize)],
        old: u64,
        new: u64,
    ) -> Result<()> {
        let cell: &AtomicU64 = match path.last() {
            // SAFETY: inner nodes on the path are live.
            Some(&(inner_raw, idx)) => unsafe { &inner_of(inner_raw).children[idx] },
            None => self.root_cell(),
        };
        if self.mwcas.execute(guard, &[(cell, old, new)])? {
            self.retire_node(guard, old);
        } else {
            // Lost the race: free our unpublished copy and move on.
            self.free_node_now(new);
        }
        Ok(())
    }

    /// Installs a leaf split: CoW the parent with the separator inserted.
    fn install_split(
        &self,
        guard: &Guard<'_>,
        path: &[(u64, usize)],
        old: u64,
        left: u64,
        sep: u64,
        right: u64,
    ) -> Result<()> {
        match path.split_last() {
            None => {
                // Root leaf split: new root inner node.
                let root = self.build_inner(&[sep], &[left, right])?;
                if self
                    .mwcas
                    .execute(guard, &[(self.root_cell(), old, root)])?
                {
                    self.retire_node(guard, old);
                } else {
                    self.free_node_now(left);
                    self.free_node_now(right);
                    self.free_node_now(root);
                }
                Ok(())
            }
            Some((&(parent_raw, idx), rest)) => {
                // SAFETY: live inner node.
                let parent = unsafe { inner_of(parent_raw) };
                let n = parent.count as usize;
                // Verify the parent still points at `old` (race check).
                if read_word(&parent.children[idx]) != old {
                    self.free_node_now(left);
                    self.free_node_now(right);
                    return Ok(());
                }
                let mut keys: Vec<u64> = Vec::with_capacity(n + 1);
                let mut children: Vec<u64> = Vec::with_capacity(n + 2);
                for i in 0..n {
                    keys.push(parent.keys[i]);
                }
                for i in 0..=n {
                    children.push(read_word(&parent.children[i]));
                }
                keys.insert(idx, sep);
                children[idx] = left;
                children.insert(idx + 1, right);

                if keys.len() <= INNER_CAP {
                    let newp = self.build_inner(&keys, &children)?;
                    self.swap_inner(guard, rest, parent_raw, newp, &[old])?;
                } else {
                    // Split the parent too: promote the middle key upward.
                    let mid = keys.len() / 2;
                    let lkeys = &keys[..mid];
                    let promoted = keys[mid];
                    let rkeys = &keys[mid + 1..];
                    let lchildren = &children[..=mid];
                    let rchildren = &children[mid + 1..];
                    let pl = self.build_inner(lkeys, lchildren)?;
                    let pr = self.build_inner(rkeys, rchildren)?;
                    self.install_inner_split(guard, rest, parent_raw, pl, promoted, pr, old)?;
                }
                Ok(())
            }
        }
    }

    /// Recursive internal split installation.
    #[allow(clippy::too_many_arguments)]
    fn install_inner_split(
        &self,
        guard: &Guard<'_>,
        path: &[(u64, usize)],
        old_inner: u64,
        left: u64,
        sep: u64,
        right: u64,
        retired_leaf: u64,
    ) -> Result<()> {
        match path.split_last() {
            None => {
                let root = self.build_inner(&[sep], &[left, right])?;
                if self
                    .mwcas
                    .execute(guard, &[(self.root_cell(), old_inner, root)])?
                {
                    self.retire_node(guard, old_inner);
                    self.retire_node(guard, retired_leaf);
                } else {
                    self.free_node_now(left);
                    self.free_node_now(right);
                    self.free_node_now(root);
                }
                Ok(())
            }
            Some((&(gp_raw, idx), rest)) => {
                // SAFETY: live inner node.
                let gp = unsafe { inner_of(gp_raw) };
                if read_word(&gp.children[idx]) != old_inner {
                    self.free_node_now(left);
                    self.free_node_now(right);
                    return Ok(());
                }
                let n = gp.count as usize;
                let mut keys: Vec<u64> = (0..n).map(|i| gp.keys[i]).collect();
                let mut children: Vec<u64> = (0..=n).map(|i| read_word(&gp.children[i])).collect();
                keys.insert(idx, sep);
                children[idx] = left;
                children.insert(idx + 1, right);
                if keys.len() <= INNER_CAP {
                    let newgp = self.build_inner(&keys, &children)?;
                    self.swap_inner(guard, rest, gp_raw, newgp, &[old_inner, retired_leaf])?;
                } else {
                    let mid = keys.len() / 2;
                    let pl = self.build_inner(&keys[..mid], &children[..=mid])?;
                    let promoted = keys[mid];
                    let pr = self.build_inner(&keys[mid + 1..], &children[mid + 1..])?;
                    // Retire the current-level old node along with the leaf.
                    self.install_inner_split(guard, rest, gp_raw, pl, promoted, pr, old_inner)?;
                    self.retire_node(guard, retired_leaf);
                }
                Ok(())
            }
        }
    }

    /// Swaps an inner node for its CoW replacement in the grandparent.
    fn swap_inner(
        &self,
        guard: &Guard<'_>,
        path: &[(u64, usize)],
        old: u64,
        new: u64,
        also_retire: &[u64],
    ) -> Result<()> {
        let cell: &AtomicU64 = match path.last() {
            // SAFETY: live inner node.
            Some(&(gp_raw, idx)) => unsafe { &inner_of(gp_raw).children[idx] },
            None => self.root_cell(),
        };
        if self.mwcas.execute(guard, &[(cell, old, new)])? {
            self.retire_node(guard, old);
            for &r in also_retire {
                self.retire_node(guard, r);
            }
        } else {
            self.free_node_now(new);
        }
        Ok(())
    }

    fn build_inner(&self, keys: &[u64], children: &[u64]) -> Result<u64> {
        assert!(keys.len() <= INNER_CAP && children.len() == keys.len() + 1);
        let ptr = self.pool.allocator().alloc(INNER_SIZE)?;
        // SAFETY: fresh INNER_SIZE allocation.
        unsafe {
            ptr.as_mut_ptr().write_bytes(0, INNER_SIZE);
            let inner = &mut *(ptr.as_mut_ptr() as *mut Inner);
            inner.kind = KIND_INNER;
            inner.count = keys.len() as u64;
            inner.keys[..keys.len()].copy_from_slice(keys);
            for (i, &c) in children.iter().enumerate() {
                inner.children[i] = AtomicU64::new(c);
            }
        }
        persist::persist(ptr.as_ptr(), INNER_SIZE);
        persist::fence();
        Ok(ptr.raw())
    }

    fn retire_node(&self, guard: &Guard<'_>, raw: u64) {
        // SAFETY: node was reachable; size from its kind tag.
        let size = if unsafe { kind_of(raw) } == KIND_LEAF {
            LEAF_SIZE
        } else {
            INNER_SIZE
        };
        let pool = Arc::clone(&self.pool);
        self.collector.defer(guard, move || {
            pool.allocator().free(PmPtr::from_raw(raw), size);
        });
    }

    fn free_node_now(&self, raw: u64) {
        // SAFETY: never published — exclusively ours.
        let size = if unsafe { kind_of(raw) } == KIND_LEAF {
            LEAF_SIZE
        } else {
            INNER_SIZE
        };
        self.pool.allocator().free(PmPtr::from_raw(raw), size);
    }

    /// Live pairs — O(n), tests only.
    pub fn len(&self) -> usize {
        self.scan(b"", usize::MAX >> 1).len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl obsv::OpRecorder for BzTree {
    fn op_histograms(&self) -> &obsv::OpHistograms {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn integer_crud() {
        let t = BzTree::create("bz-int", 512 << 20, KeyMode::Integer).unwrap();
        let mut model = BTreeMap::new();
        let mut x = 7u64;
        for i in 0..15_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = x % 6000;
            let old = t.insert(&k.to_be_bytes(), i).unwrap();
            assert_eq!(old, model.insert(k, i), "insert {k} at step {i}");
        }
        for (&k, &v) in &model {
            assert_eq!(t.lookup(&k.to_be_bytes()), Some(v), "lookup {k}");
        }
        assert_eq!(t.len(), model.len());
        t.destroy();
    }

    #[test]
    fn remove_tombstones() {
        let t = BzTree::create("bz-del", 256 << 20, KeyMode::Integer).unwrap();
        for i in 0..500u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        for i in (0..500u64).step_by(3) {
            assert_eq!(t.remove(&i.to_be_bytes()).unwrap(), Some(i));
            assert_eq!(
                t.remove(&i.to_be_bytes()).unwrap(),
                None,
                "double delete {i}"
            );
        }
        for i in 0..500u64 {
            let expect = (i % 3 != 0).then_some(i);
            assert_eq!(t.lookup(&i.to_be_bytes()), expect, "key {i}");
        }
        // Reinsert over tombstones.
        for i in (0..500u64).step_by(3) {
            assert_eq!(t.insert(&i.to_be_bytes(), i + 1000).unwrap(), None);
            assert_eq!(t.lookup(&i.to_be_bytes()), Some(i + 1000));
        }
        t.destroy();
    }

    #[test]
    fn scan_sorted() {
        let t = BzTree::create("bz-scan", 256 << 20, KeyMode::Integer).unwrap();
        for i in (0..800u64).rev() {
            t.insert(&(i * 2).to_be_bytes(), i).unwrap();
        }
        let got: Vec<u64> = t
            .scan(&100u64.to_be_bytes(), 10)
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(got, (50..60).map(|i| i * 2).collect::<Vec<_>>());
        t.destroy();
    }

    #[test]
    fn string_mode() {
        let t = BzTree::create("bz-str", 256 << 20, KeyMode::String).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..3000u64 {
            let k = format!("user{:07}", (i * 131) % 4000);
            let old = t.insert(k.as_bytes(), i).unwrap();
            assert_eq!(old, model.insert(k, i));
        }
        for (k, &v) in &model {
            assert_eq!(t.lookup(k.as_bytes()), Some(v));
        }
        let got = t.scan(b"user0002000", 5);
        let expect: Vec<(Vec<u8>, u64)> = model
            .range("user0002000".to_string()..)
            .take(5)
            .map(|(k, v)| (k.clone().into_bytes(), *v))
            .collect();
        assert_eq!(got, expect);
        t.destroy();
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = BzTree::create("bz-conc", 512 << 20, KeyMode::Integer).unwrap();
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = tid * 100_000 + i;
                    t.insert(&k.to_be_bytes(), k).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for tid in 0..6u64 {
            for i in (0..2000u64).step_by(17) {
                let k = tid * 100_000 + i;
                assert_eq!(t.lookup(&k.to_be_bytes()), Some(k));
            }
        }
        assert_eq!(t.len(), 12_000);
        t.destroy();
    }
}
