//! PMwCAS: persistent multi-word compare-and-swap (Wang et al., ICDE'18) —
//! the lock-free primitive BzTree is built on (PACTree §2.2.1).
//!
//! A descriptor records up to four `(address, expected, new)` word triples.
//! Threads install a marked descriptor pointer into each target word with
//! single-word CAS (helping any descriptor already present), decide the
//! outcome with a CAS on the descriptor's status word, and then replace the
//! marked pointers with the final values. Every installed word and the
//! status word are flushed — the flush storm the PACTree paper measures
//! (BzTree: ≥15 flushes per insert, GA4).
//!
//! Target words must keep bit 0 clear (aligned pointers and shifted packed
//! fields do); descriptor pointers are tagged with bit 0. Descriptors are
//! NVM allocations reclaimed through the epoch collector, so readers never
//! chase freed descriptors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem::epoch::{Collector, Guard};
use pmem::persist;
use pmem::pool::PmemPool;
use pmem::pptr::PmPtr;
use pmem::Result;

/// Maximum words per descriptor.
pub const MAX_WORDS: usize = 4;

const ST_UNDECIDED: u64 = 0;
const ST_SUCCEEDED: u64 = 2;
const ST_FAILED: u64 = 4;

const MARK: u64 = 1;

/// A PMwCAS descriptor (lives in NVM).
#[repr(C)]
struct Descriptor {
    status: AtomicU64,
    count: AtomicU64,
    /// `[addr, expected, new]` per word; `addr` is the raw pointer value of
    /// the target `AtomicU64`.
    words: [[AtomicU64; 3]; MAX_WORDS],
}

const DESC_SIZE: usize = std::mem::size_of::<Descriptor>();

/// Executes PMwCAS operations against one pool, reclaiming descriptors
/// through the shared epoch collector.
pub struct PmwCasRunner {
    pool: Arc<PmemPool>,
    collector: Arc<Collector>,
    /// Descriptors allocated (diagnostic; showcases BzTree's allocation
    /// pressure, GA3).
    pub descriptors_allocated: AtomicU64,
}

impl PmwCasRunner {
    /// Creates a runner over `pool`.
    pub fn new(pool: Arc<PmemPool>, collector: Arc<Collector>) -> PmwCasRunner {
        PmwCasRunner {
            pool,
            collector,
            descriptors_allocated: AtomicU64::new(0),
        }
    }

    /// Atomically and persistently applies `entries` (up to [`MAX_WORDS`]
    /// `(target, expected, new)` triples). Returns true on success.
    ///
    /// # Panics
    ///
    /// Panics if any `new`/`expected` value has bit 0 set, or more than
    /// [`MAX_WORDS`] entries are passed.
    pub fn execute(&self, guard: &Guard<'_>, entries: &[(&AtomicU64, u64, u64)]) -> Result<bool> {
        assert!(entries.len() <= MAX_WORDS && !entries.is_empty());
        for &(_, old, new) in entries {
            assert_eq!(old & MARK, 0, "expected value uses the mark bit");
            assert_eq!(new & MARK, 0, "new value uses the mark bit");
        }
        let ptr = self.pool.allocator().alloc(DESC_SIZE)?;
        self.descriptors_allocated.fetch_add(1, Ordering::Relaxed);
        // SAFETY: fresh DESC_SIZE allocation.
        let desc = unsafe {
            let raw = ptr.as_mut_ptr();
            raw.write_bytes(0, DESC_SIZE);
            let d = &*(raw as *const Descriptor);
            d.count.store(entries.len() as u64, Ordering::Relaxed);
            for (i, &(addr, old, new)) in entries.iter().enumerate() {
                d.words[i][0].store(addr as *const AtomicU64 as u64, Ordering::Relaxed);
                d.words[i][1].store(old, Ordering::Relaxed);
                d.words[i][2].store(new, Ordering::Relaxed);
            }
            d
        };
        persist::persist(ptr.as_ptr(), DESC_SIZE);
        persist::fence();
        let marked = ptr.raw() | MARK;
        let ok = help(desc, marked);
        // Retire the descriptor after two epochs: concurrent readers may
        // still hold the marked pointer.
        let pool = Arc::clone(&self.pool);
        self.collector.defer(guard, move || {
            pool.allocator()
                .free(PmPtr::from_raw(marked & !MARK), DESC_SIZE);
        });
        Ok(ok)
    }

    /// Reads a PMwCAS-managed word, helping complete any in-flight
    /// descriptor found there.
    pub fn read_word(&self, _guard: &Guard<'_>, cell: &AtomicU64) -> u64 {
        read_word(cell)
    }
}

/// Reads a PMwCAS-managed word (free function for contexts that are already
/// epoch-pinned).
pub fn read_word(cell: &AtomicU64) -> u64 {
    loop {
        let v = cell.load(Ordering::Acquire);
        if v & MARK == 0 {
            return v;
        }
        // SAFETY: marked pointers always reference a live (epoch-protected)
        // descriptor.
        let desc = unsafe { desc_of(v) };
        help(desc, v);
    }
}

/// Dereferences a marked descriptor pointer.
///
/// # Safety
///
/// The descriptor must still be live (epoch protection).
unsafe fn desc_of<'a>(marked: u64) -> &'a Descriptor {
    // SAFETY: per caller contract.
    unsafe { &*(PmPtr::<Descriptor>::from_raw(marked & !MARK).as_ptr()) }
}

/// Drives a descriptor to completion (any thread may call this — the
/// helping protocol). Returns true iff the PMwCAS succeeded.
fn help(desc: &Descriptor, marked: u64) -> bool {
    let count = desc.count.load(Ordering::Acquire) as usize;
    // Phase 1: install the descriptor into every target word.
    let mut status_goal = ST_SUCCEEDED;
    'install: for i in 0..count {
        let addr = desc.words[i][0].load(Ordering::Acquire) as *const AtomicU64;
        let expected = desc.words[i][1].load(Ordering::Acquire);
        // SAFETY: target cells outlive the data structure operation; callers
        // are epoch-pinned.
        let cell = unsafe { &*addr };
        loop {
            if desc.status.load(Ordering::Acquire) != ST_UNDECIDED {
                break 'install; // someone already decided
            }
            let cur = cell.load(Ordering::Acquire);
            if cur == marked {
                break; // already installed
            }
            if cur & MARK != 0 {
                // Another descriptor is in flight here: help it first.
                // SAFETY: epoch-protected descriptor.
                let other = unsafe { desc_of(cur) };
                help(other, cur);
                continue;
            }
            if cur != expected {
                status_goal = ST_FAILED;
                break 'install;
            }
            match cell.compare_exchange_weak(cur, marked, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    persist::persist_obj(cell);
                    break;
                }
                Err(_) => continue,
            }
        }
    }
    persist::fence();
    // Decide.
    let _ = desc.status.compare_exchange(
        ST_UNDECIDED,
        status_goal,
        Ordering::AcqRel,
        Ordering::Acquire,
    );
    persist::persist_obj_fenced(&desc.status);
    let succeeded = desc.status.load(Ordering::Acquire) == ST_SUCCEEDED;

    // Phase 2: replace installed pointers with the final values.
    for i in 0..count {
        let addr = desc.words[i][0].load(Ordering::Acquire) as *const AtomicU64;
        let expected = desc.words[i][1].load(Ordering::Acquire);
        let new = desc.words[i][2].load(Ordering::Acquire);
        let finalv = if succeeded { new } else { expected };
        // SAFETY: see Phase 1.
        let cell = unsafe { &*addr };
        if cell
            .compare_exchange(marked, finalv, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            persist::persist_obj(cell);
        }
    }
    persist::fence();
    succeeded
}

/// Post-crash scrub of one PMwCAS-managed word: if the word holds a marked
/// descriptor pointer, roll it forward (descriptor decided `SUCCEEDED`) or
/// back (undecided/failed) to a plain value, persist, and return it.
///
/// Sound against crash states reachable between fences: the descriptor is
/// fully persisted and fenced *before* any marked pointer is installed, and
/// a descriptor is only retired (and its memory possibly reused) two epochs
/// after phase 2 replaced every marked pointer — whose replacement stores
/// are flushed and fenced immediately. So any marked pointer found on media
/// after a crash refers to a descriptor whose media content is intact.
/// Out-of-bounds descriptor pointers (impossible by that argument, but crash
/// images are adversarial) degrade to storing 0 rather than faulting.
///
/// Only valid before new PMwCAS traffic starts and while pool base addresses
/// are unchanged since the crash: descriptors record target cells by raw
/// address.
pub fn recover_word(pool: &PmemPool, cell: &AtomicU64) -> u64 {
    let v = cell.load(Ordering::Acquire);
    if v & MARK == 0 {
        return v;
    }
    let p = PmPtr::<Descriptor>::from_raw(v & !MARK);
    let mut final_v = 0;
    if !p.is_null()
        && p.pool_id() == pool.id()
        && p.offset().is_multiple_of(8)
        && p.offset() + DESC_SIZE as u64 <= pool.size() as u64
    {
        // SAFETY: bounds-checked above; all-atomic-word struct, so any bit
        // pattern is readable.
        let desc = unsafe { p.deref() };
        let succeeded = desc.status.load(Ordering::Acquire) == ST_SUCCEEDED;
        let count = (desc.count.load(Ordering::Acquire) as usize).min(MAX_WORDS);
        let addr = cell as *const AtomicU64 as u64;
        for i in 0..count {
            if desc.words[i][0].load(Ordering::Acquire) == addr {
                final_v = desc.words[i][if succeeded { 2 } else { 1 }].load(Ordering::Acquire);
                break;
            }
        }
    }
    cell.store(final_v, Ordering::Release);
    persist::persist_obj(cell);
    final_v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::pool::{destroy_pool, PoolConfig};

    fn mk(name: &str) -> (Arc<PmemPool>, PmwCasRunner, Arc<Collector>) {
        let pool = PmemPool::create(PoolConfig::volatile(name, 64 << 20)).unwrap();
        let collector = Arc::new(Collector::new());
        let runner = PmwCasRunner::new(Arc::clone(&pool), Arc::clone(&collector));
        (pool, runner, collector)
    }

    /// Allocates an AtomicU64 cell inside the pool (PMwCAS targets must be
    /// stable addresses).
    fn cell(pool: &PmemPool, init: u64) -> &'static AtomicU64 {
        let p = pool.allocator().alloc(8).unwrap();
        // SAFETY: fresh 8-byte aligned allocation; pool lives for the test.
        unsafe {
            (p.as_mut_ptr() as *mut u64).write(init);
            &*(p.as_ptr() as *const AtomicU64)
        }
    }

    #[test]
    fn two_word_success_and_failure() {
        let (pool, runner, collector) = mk("pmwcas-basic");
        let a = cell(&pool, 10);
        let b = cell(&pool, 20);
        let g = collector.pin();
        assert!(runner.execute(&g, &[(a, 10, 12), (b, 20, 22)]).unwrap());
        assert_eq!(read_word(a), 12);
        assert_eq!(read_word(b), 22);
        // Second attempt with stale expected values fails atomically.
        assert!(!runner.execute(&g, &[(a, 10, 14), (b, 22, 24)]).unwrap());
        assert_eq!(read_word(a), 12);
        assert_eq!(read_word(b), 24 - 2, "b must be rolled back to 22");
        drop(g);
        destroy_pool(pool.id());
    }

    #[test]
    #[should_panic(expected = "mark bit")]
    fn odd_values_rejected() {
        let (pool, runner, collector) = mk("pmwcas-odd");
        let a = cell(&pool, 0);
        let g = collector.pin();
        let _ = runner.execute(&g, &[(a, 0, 3)]);
        drop(g);
        destroy_pool(pool.id());
    }

    #[test]
    fn concurrent_counter_increments() {
        let (pool, runner, collector) = mk("pmwcas-conc");
        let a = cell(&pool, 0);
        let b = cell(&pool, 0);
        let runner = Arc::new(runner);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let runner = Arc::clone(&runner);
            let collector = Arc::clone(&collector);
            let (a, b) = (a, b);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < 500 {
                    let g = collector.pin();
                    let va = read_word(a);
                    let vb = read_word(b);
                    // Both words advance together by 2 (keeping bit 0 clear).
                    if runner
                        .execute(&g, &[(a, va, va + 2), (b, vb, vb + 2)])
                        .unwrap()
                    {
                        done += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(read_word(a), 8 * 500 * 2);
        assert_eq!(read_word(a), read_word(b), "words always move together");
        collector.flush();
        destroy_pool(pool.id());
    }

    #[test]
    fn flush_traffic_is_substantial() {
        // The GA4 point: each PMwCAS flushes every target word twice plus
        // the descriptor and status.
        pmem::model::set_config(pmem::model::NvmModelConfig::accounting());
        let (pool, runner, collector) = mk("pmwcas-flush");
        let a = cell(&pool, 0);
        let b = cell(&pool, 0);
        let before = pmem::stats::global().snapshot();
        let g = collector.pin();
        runner.execute(&g, &[(a, 0, 2), (b, 0, 2)]).unwrap();
        drop(g);
        let d = pmem::stats::global().snapshot().since(&before);
        pmem::model::set_config(pmem::model::NvmModelConfig::disabled());
        assert!(d.flushes >= 6, "expected >=6 flushes, got {}", d.flushes);
        destroy_pool(pool.id());
    }
}
