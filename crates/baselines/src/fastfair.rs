//! FastFair: a lock-based persistent B+tree baseline (FAST'18, PACTree §2.2.1).
//!
//! Characteristics this reimplementation preserves (they drive every
//! comparison in the paper's evaluation):
//!
//! * **Sorted nodes with failure-atomic shift inserts**: inserting into a
//!   node shifts entries one by one, persisting each 8-byte store in order —
//!   logless crash consistency paid for with extra NVM writes per insert.
//! * **Embedded integer pairs**: 8-byte keys and values live inside the leaf
//!   (lowest allocation pressure — GA3's winner; fast sequential scans —
//!   GA5's winner). String keys are stored *out of node* behind a pointer,
//!   which costs an extra dereference per comparison (the §6.1 3x collapse
//!   for string keys).
//! * **Synchronous SMOs in the critical path**: splits propagate up the tree
//!   under a whole-path write lock — the blocking the paper's GC2 targets.
//! * **Reader-visible lock state in NVM**: readers take a shared spinlock
//!   whose count word lives in the node (NVM), generating the GA2 write
//!   traffic the paper measured (1.4 GB of writes in read-only YCSB-C).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem::model;
use pmem::persist;
use pmem::pool::{self, PmemPool, PoolConfig};
use pmem::pptr::PmPtr;
use pmem::{AllocMode, PmemError, Result};

/// Entries per node ("FastFair embeds 30 8B-key and 8B-value pairs in a
/// node", PACTree §3.3).
pub const FF_SLOTS: usize = 30;

/// Key representation mode, fixed at tree creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// Keys are exactly 8 bytes, embedded in the node (big-endian order).
    Integer,
    /// Keys are arbitrary byte strings stored out of node behind a pointer.
    String,
}

/// A reader-writer spinlock whose state lives in NVM.
///
/// Readers increment the shared count — an NVM store (charged to the model
/// as dirty-line traffic) exactly reproducing the paper's GA2 finding.
#[repr(C)]
struct NvmRwLock {
    /// Bit 63 = writer; low bits = reader count.
    state: AtomicU64,
}

const WRITER: u64 = 1 << 63;

impl NvmRwLock {
    fn read_lock(&self, pool_id: pool::PoolId, offset: u64) {
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                model::on_dirty(pool_id, offset, 8);
                return;
            }
            std::thread::yield_now();
        }
    }

    fn read_unlock(&self, pool_id: pool::PoolId, offset: u64) {
        self.state.fetch_sub(1, Ordering::AcqRel);
        model::on_dirty(pool_id, offset, 8);
    }

    fn write_lock(&self, pool_id: pool::PoolId, offset: u64) {
        // Claim the writer bit, then wait out the readers.
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s | WRITER, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                break;
            }
            std::thread::yield_now();
        }
        while self.state.load(Ordering::Acquire) != WRITER {
            std::thread::yield_now();
        }
        model::on_dirty(pool_id, offset, 8);
    }

    fn write_unlock(&self, pool_id: pool::PoolId, offset: u64) {
        self.state.store(0, Ordering::Release);
        model::on_dirty(pool_id, offset, 8);
    }
}

/// One B+tree node (leaf or internal).
///
/// Layout: `[lock][meta][leftmost][sibling][entries: (key_word, value); 30]`.
/// `key_word` is the big-endian integer key or a `PmPtr` to out-of-node key
/// bytes `{len: u32, bytes...}`. Entries are sorted; a zero key_word marks
/// the end (keys are never the zero word: integer keys are stored +1).
#[repr(C)]
struct Node {
    lock: NvmRwLock,
    /// Bit 0: is_leaf. Upper bits: entry count.
    meta: AtomicU64,
    /// Leftmost child (internal nodes only).
    leftmost: AtomicU64,
    /// Right sibling.
    sibling: AtomicU64,
    entries: [[AtomicU64; 2]; FF_SLOTS],
}

const NODE_SIZE: usize = std::mem::size_of::<Node>();

impl Node {
    fn count(&self) -> usize {
        (self.meta.load(Ordering::Acquire) >> 1) as usize
    }

    fn is_leaf(&self) -> bool {
        self.meta.load(Ordering::Acquire) & 1 == 1
    }

    fn set_count(&self, n: usize) {
        let leaf = self.meta.load(Ordering::Relaxed) & 1;
        self.meta.store(((n as u64) << 1) | leaf, Ordering::Release);
        persist::persist_obj(&self.meta);
    }

    fn key_word(&self, i: usize) -> u64 {
        self.entries[i][0].load(Ordering::Acquire)
    }

    fn value(&self, i: usize) -> u64 {
        self.entries[i][1].load(Ordering::Acquire)
    }
}

/// Dereferences a node pointer.
///
/// # Safety
///
/// `raw` must point to an initialized node in a live pool.
unsafe fn nref<'a>(raw: u64) -> &'a Node {
    debug_assert_ne!(raw, 0);
    // SAFETY: per caller contract.
    unsafe { &*(PmPtr::<Node>::from_raw(raw).as_ptr()) }
}

/// The FastFair persistent B+tree.
pub struct FastFair {
    pool: Arc<PmemPool>,
    mode: KeyMode,
    /// Per-operation latency histograms (obsv recorder).
    ops: obsv::OpHistograms,
}

impl FastFair {
    /// Creates a FastFair tree in a fresh pool.
    pub fn create(name: &str, pool_size: usize, mode: KeyMode) -> Result<Arc<FastFair>> {
        let pool = PmemPool::create(PoolConfig {
            name: name.to_string(),
            size: pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: false,
            alloc_mode: AllocMode::CrashConsistent,
        })?;
        let tree = FastFair {
            pool,
            mode,
            ops: obsv::OpHistograms::new(),
        };
        let root_cell = tree.pool.allocator().root(0);
        let pid = tree.pool.id();
        tree.pool
            .allocator()
            .malloc_to(NODE_SIZE, root_cell, |raw| {
                // SAFETY: fresh NODE_SIZE allocation.
                unsafe { init_node(raw, true) };
            })?;
        let _ = pid;
        Ok(Arc::new(tree))
    }

    /// Creates a FastFair tree in a fresh pool with crash simulation enabled
    /// (a media image), so the tree can be crash-tested and recovered.
    pub fn create_durable(name: &str, pool_size: usize, mode: KeyMode) -> Result<Arc<FastFair>> {
        let pool = PmemPool::create(PoolConfig {
            name: name.to_string(),
            size: pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
        })?;
        let tree = FastFair {
            pool,
            mode,
            ops: obsv::OpHistograms::new(),
        };
        let root_cell = tree.pool.allocator().root(0);
        tree.pool
            .allocator()
            .malloc_to(NODE_SIZE, root_cell, |raw| {
                // SAFETY: fresh NODE_SIZE allocation.
                unsafe { init_node(raw, true) };
            })?;
        Ok(Arc::new(tree))
    }

    /// Reattaches to a crashed-and-remounted pool.
    ///
    /// FastFair keeps its reader/writer lock word *inside* the NVM node, so
    /// a crash can leave persisted lock words non-zero; recovery walks the
    /// tree and clears them (the FAST/FAIR paper's "lock initialization
    /// during recovery"), after replaying the allocation logs.
    pub fn recover(name: &str, mode: KeyMode) -> Result<Arc<FastFair>> {
        let pool =
            pool::pool_by_name(name).ok_or_else(|| PmemError::PoolNotFound(name.to_string()))?;
        pool.allocator().recover_logs();
        let tree = FastFair {
            pool,
            mode,
            ops: obsv::OpHistograms::new(),
        };
        tree.clear_locks();
        Ok(Arc::new(tree))
    }

    /// Clears every reachable node's lock word after a crash. The walk is
    /// defensive: a torn crash image may hold garbage child pointers, so
    /// every pointer is bounds-checked and counts are clamped.
    fn clear_locks(&self) {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.root_raw()];
        while let Some(raw) = stack.pop() {
            if raw == 0 || !seen.insert(raw) {
                continue;
            }
            let Some(node) = self.checked_node(raw) else {
                continue;
            };
            node.lock.state.store(0, Ordering::Release);
            persist::persist_obj(&node.lock.state);
            stack.push(node.sibling.load(Ordering::Acquire));
            if !node.is_leaf() {
                stack.push(node.leftmost.load(Ordering::Acquire));
                for i in 0..node.count().min(FF_SLOTS) {
                    stack.push(node.value(i));
                }
            }
        }
        persist::fence();
    }

    /// Bounds-checks a node pointer against the backing pool before
    /// dereferencing it; crash images can contain garbage words.
    fn checked_node(&self, raw: u64) -> Option<&Node> {
        let p = PmPtr::<Node>::from_raw(raw);
        if p.is_null() || p.pool_id() != self.pool.id() {
            return None;
        }
        let off = p.offset();
        if !off.is_multiple_of(8) || off + NODE_SIZE as u64 > self.pool.size() as u64 {
            return None;
        }
        // SAFETY: in bounds of the live pool; Node is all-atomic words, so
        // any bit pattern is a valid (if semantically torn) Node.
        Some(unsafe { &*p.as_ptr() })
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Unregisters the backing pool.
    pub fn destroy(self: Arc<Self>) {
        let id = self.pool.id();
        drop(self);
        pool::destroy_pool(id);
    }

    fn root_raw(&self) -> u64 {
        self.pool.allocator().root(0).load(Ordering::Acquire)
    }

    // -- Key encoding --------------------------------------------------------

    /// Encodes a key into its in-node word. Integer mode maps the 8 big-
    /// endian bytes to `value + 1` so the zero word stays an end marker.
    fn encode_key(&self, key: &[u8]) -> Result<u64> {
        match self.mode {
            KeyMode::Integer => {
                let arr: [u8; 8] = key
                    .try_into()
                    .map_err(|_| PmemError::Corruption("integer mode needs 8-byte keys"))?;
                let v = u64::from_be_bytes(arr);
                if v == u64::MAX {
                    return Err(PmemError::Corruption("u64::MAX key unsupported"));
                }
                Ok(v + 1)
            }
            KeyMode::String => {
                let ptr = self.pool.allocator().alloc(4 + key.len())?;
                // SAFETY: fresh allocation of 4 + len bytes.
                unsafe {
                    (ptr.as_mut_ptr() as *mut u32).write(key.len() as u32);
                    std::ptr::copy_nonoverlapping(key.as_ptr(), ptr.as_mut_ptr().add(4), key.len());
                }
                persist::persist(ptr.as_ptr(), 4 + key.len());
                Ok(ptr.raw())
            }
        }
    }

    /// Compares a search key against an encoded key word. String mode
    /// dereferences the out-of-node key (an extra NVM read, charged).
    fn cmp_key(&self, word: u64, key: &[u8]) -> std::cmp::Ordering {
        match self.mode {
            KeyMode::Integer => {
                let stored = (word - 1).to_be_bytes();
                stored.as_slice().cmp(key)
            }
            KeyMode::String => {
                let p = PmPtr::<u8>::from_raw(word);
                model::on_read(p.pool_id(), p.offset(), 64);
                // SAFETY: key blocks are immutable after creation.
                let len = unsafe { *(p.as_ptr() as *const u32) } as usize;
                // SAFETY: block is len + 4 bytes.
                let bytes = unsafe { std::slice::from_raw_parts(p.as_ptr().add(4), len) };
                bytes.cmp(key)
            }
        }
    }

    /// Decodes an encoded key word into owned bytes.
    fn decode_key(&self, word: u64) -> Vec<u8> {
        match self.mode {
            KeyMode::Integer => (word - 1).to_be_bytes().to_vec(),
            KeyMode::String => {
                let p = PmPtr::<u8>::from_raw(word);
                // SAFETY: immutable key block.
                let len = unsafe { *(p.as_ptr() as *const u32) } as usize;
                // SAFETY: block is len + 4 bytes.
                unsafe { std::slice::from_raw_parts(p.as_ptr().add(4), len) }.to_vec()
            }
        }
    }

    // -- Traversal -------------------------------------------------------------

    /// Descends to the leaf covering `key`, taking read locks hand-over-hand.
    /// Returns the locked leaf (caller must unlock).
    fn find_leaf_shared(&self, key: &[u8]) -> u64 {
        let pid = self.pool.id();
        let mut raw = self.root_raw();
        // SAFETY: root always exists.
        let mut node = unsafe { nref(raw) };
        node.lock
            .read_lock(pid, PmPtr::<u8>::from_raw(raw).offset());
        loop {
            model::on_read(pid, PmPtr::<u8>::from_raw(raw).offset(), NODE_SIZE.min(512));
            if node.is_leaf() {
                return raw;
            }
            let child = self.child_for(node, key);
            // SAFETY: children of a locked node are initialized.
            let cnode = unsafe { nref(child) };
            cnode
                .lock
                .read_lock(pid, PmPtr::<u8>::from_raw(child).offset());
            node.lock
                .read_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
            raw = child;
            node = cnode;
        }
    }

    /// Binary search for the child covering `key` in an internal node.
    fn child_for(&self, node: &Node, key: &[u8]) -> u64 {
        let n = node.count();
        // Charge the binary-search key comparisons (GA1: a B+tree pays a
        // full key comparison per probe).
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cmp_key(node.key_word(mid), key) {
                std::cmp::Ordering::Greater => hi = mid,
                _ => lo = mid + 1,
            }
        }
        if lo == 0 {
            node.leftmost.load(Ordering::Acquire)
        } else {
            node.value(lo - 1)
        }
    }

    /// Position of `key` in a node: `Ok(i)` exact, `Err(i)` insertion point.
    fn search_node(&self, node: &Node, key: &[u8]) -> std::result::Result<usize, usize> {
        let n = node.count();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cmp_key(node.key_word(mid), key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    // -- Public operations -------------------------------------------------------

    /// Point lookup.
    pub fn lookup(&self, key: &[u8]) -> Option<u64> {
        let timer = obsv::OpTimer::start();
        let result = self.lookup_inner(key);
        self.ops.finish(obsv::OpKind::Lookup, timer, 0);
        result
    }

    fn lookup_inner(&self, key: &[u8]) -> Option<u64> {
        let pid = self.pool.id();
        let leaf_raw = self.find_leaf_shared(key);
        // SAFETY: locked leaf.
        let leaf = unsafe { nref(leaf_raw) };
        let res = self.search_node(leaf, key).ok().map(|i| leaf.value(i));
        leaf.lock
            .read_unlock(pid, PmPtr::<u8>::from_raw(leaf_raw).offset());
        res
    }

    /// Range scan: up to `count` pairs with keys ≥ `start`, using the
    /// sibling chain (sequential embedded reads for integer keys — GA5).
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let timer = obsv::OpTimer::start();
        let result = self.scan_inner(start, count);
        self.ops.finish(obsv::OpKind::Scan, timer, 0);
        result
    }

    fn scan_inner(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let pid = self.pool.id();
        let mut out = Vec::with_capacity(count.min(4096));
        let mut raw = self.find_leaf_shared(start);
        loop {
            // SAFETY: locked leaf.
            let leaf = unsafe { nref(raw) };
            model::on_read(pid, PmPtr::<u8>::from_raw(raw).offset(), NODE_SIZE);
            let from = match self.search_node(leaf, start) {
                Ok(i) => i,
                Err(i) => i,
            };
            for i in from..leaf.count() {
                let pair = (self.decode_key(leaf.key_word(i)), leaf.value(i));
                // FAST readers ignore duplicates: an interrupted shift (or a
                // crash between a split's copy and the count update) can
                // leave the same entry twice, adjacent in key order, and
                // that is tolerated rather than repaired (FAST'18 §4.1).
                if out.last().map(|p: &(Vec<u8>, u64)| &p.0) == Some(&pair.0) {
                    continue;
                }
                out.push(pair);
                if out.len() >= count {
                    leaf.lock
                        .read_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
                    return out;
                }
            }
            let sib = leaf.sibling.load(Ordering::Acquire);
            if sib == 0 {
                leaf.lock
                    .read_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
                return out;
            }
            // SAFETY: sibling is initialized.
            let snode = unsafe { nref(sib) };
            snode
                .lock
                .read_lock(pid, PmPtr::<u8>::from_raw(sib).offset());
            leaf.lock
                .read_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
            raw = sib;
        }
    }

    /// Inserts or updates; returns the previous value if the key existed.
    ///
    /// Splits are synchronous: the whole root-to-leaf path is write-locked
    /// while the split cascades (the paper's GC2 critique).
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.insert_inner(key, value);
        self.ops.finish(obsv::OpKind::Insert, timer, 0);
        result
    }

    fn insert_inner(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let pid = self.pool.id();
        // Optimistic single-leaf attempt under the write lock.
        let leaf_raw = self.find_leaf_write(key);
        // SAFETY: write-locked leaf.
        let leaf = unsafe { nref(leaf_raw) };
        match self.search_node(leaf, key) {
            Ok(i) => {
                let old = leaf.value(i);
                leaf.entries[i][1].store(value, Ordering::Release);
                persist::persist_obj_fenced(&leaf.entries[i][1]);
                leaf.lock
                    .write_unlock(pid, PmPtr::<u8>::from_raw(leaf_raw).offset());
                Ok(Some(old))
            }
            Err(pos) => {
                if leaf.count() < FF_SLOTS {
                    let word = self.encode_key(key)?;
                    self.shift_insert(leaf, pos, word, value);
                    leaf.lock
                        .write_unlock(pid, PmPtr::<u8>::from_raw(leaf_raw).offset());
                    return Ok(None);
                }
                // Full: release and redo with a full-path write descent.
                leaf.lock
                    .write_unlock(pid, PmPtr::<u8>::from_raw(leaf_raw).offset());
                self.insert_with_split(key, value)?;
                Ok(None)
            }
        }
    }

    /// Removes `key`; returns its value if present. Underflow is tolerated
    /// (no merges), like common FastFair artifacts; YCSB has no deletes.
    pub fn remove(&self, key: &[u8]) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.remove_inner(key);
        self.ops.finish(obsv::OpKind::Remove, timer, 0);
        result
    }

    fn remove_inner(&self, key: &[u8]) -> Result<Option<u64>> {
        let pid = self.pool.id();
        let leaf_raw = self.find_leaf_write(key);
        // SAFETY: write-locked leaf.
        let leaf = unsafe { nref(leaf_raw) };
        let res = match self.search_node(leaf, key) {
            Ok(i) => {
                let old = leaf.value(i);
                let n = leaf.count();
                // Failure-atomic left shift: each store persisted in order.
                for j in i..n - 1 {
                    leaf.entries[j][0].store(leaf.key_word(j + 1), Ordering::Release);
                    leaf.entries[j][1].store(leaf.value(j + 1), Ordering::Release);
                    persist::persist(leaf.entries[j].as_ptr() as *const u8, 16);
                }
                persist::fence();
                leaf.set_count(n - 1);
                persist::fence();
                Some(old)
            }
            Err(_) => None,
        };
        leaf.lock
            .write_unlock(pid, PmPtr::<u8>::from_raw(leaf_raw).offset());
        Ok(res)
    }

    // -- Write internals -----------------------------------------------------

    /// Descends to the leaf with read crabbing, then write-locks the leaf.
    fn find_leaf_write(&self, key: &[u8]) -> u64 {
        let pid = self.pool.id();
        loop {
            let mut raw = self.root_raw();
            // SAFETY: root exists.
            let mut node = unsafe { nref(raw) };
            node.lock
                .read_lock(pid, PmPtr::<u8>::from_raw(raw).offset());
            loop {
                model::on_read(pid, PmPtr::<u8>::from_raw(raw).offset(), NODE_SIZE.min(512));
                if node.is_leaf() {
                    // Upgrade by re-acquiring: release shared, take exclusive,
                    // re-validate that this leaf still covers the key (the
                    // tree may have split meanwhile).
                    node.lock
                        .read_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
                    node.lock
                        .write_lock(pid, PmPtr::<u8>::from_raw(raw).offset());
                    if self.leaf_covers(node, key) {
                        return raw;
                    }
                    node.lock
                        .write_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
                    break; // restart descent
                }
                let child = self.child_for(node, key);
                // SAFETY: child initialized.
                let cnode = unsafe { nref(child) };
                cnode
                    .lock
                    .read_lock(pid, PmPtr::<u8>::from_raw(child).offset());
                node.lock
                    .read_unlock(pid, PmPtr::<u8>::from_raw(raw).offset());
                raw = child;
                node = cnode;
            }
        }
    }

    /// Whether a locked leaf still covers `key` (checks the sibling bound).
    fn leaf_covers(&self, leaf: &Node, key: &[u8]) -> bool {
        let sib = leaf.sibling.load(Ordering::Acquire);
        if sib == 0 {
            return true;
        }
        // SAFETY: sibling initialized; its first key is its lower bound.
        let s = unsafe { nref(sib) };
        if s.count() == 0 {
            return true;
        }
        self.cmp_key(s.key_word(0), key) == std::cmp::Ordering::Greater
    }

    /// FAST shift insert: moves entries right one by one, persisting each
    /// 16-byte pair store in order, then bumps the count (8-byte atomic).
    fn shift_insert(&self, node: &Node, pos: usize, word: u64, value: u64) {
        let n = node.count();
        debug_assert!(n < FF_SLOTS);
        for j in (pos..n).rev() {
            node.entries[j + 1][0].store(node.key_word(j), Ordering::Release);
            node.entries[j + 1][1].store(node.value(j), Ordering::Release);
            persist::persist(node.entries[j + 1].as_ptr() as *const u8, 16);
        }
        node.entries[pos][0].store(word, Ordering::Release);
        node.entries[pos][1].store(value, Ordering::Release);
        persist::persist(node.entries[pos].as_ptr() as *const u8, 16);
        persist::fence();
        node.set_count(n + 1);
        persist::fence();
    }

    /// Full-path write-locked insert performing synchronous cascading splits.
    fn insert_with_split(&self, key: &[u8], value: u64) -> Result<()> {
        let pid = self.pool.id();
        // Lock the whole path exclusively, root first (simple and blocking —
        // faithfully pessimistic).
        let mut path: Vec<u64> = Vec::new();
        let mut raw = self.root_raw();
        loop {
            // SAFETY: nodes on the path are initialized.
            let node = unsafe { nref(raw) };
            node.lock
                .write_lock(pid, PmPtr::<u8>::from_raw(raw).offset());
            path.push(raw);
            if node.is_leaf() {
                break;
            }
            raw = self.child_for(node, key);
        }
        let unlock_all = |path: &[u64]| {
            for &r in path.iter().rev() {
                // SAFETY: locked above.
                unsafe { nref(r) }
                    .lock
                    .write_unlock(pid, PmPtr::<u8>::from_raw(r).offset());
            }
        };

        // The root may have split since the optimistic attempt; if the leaf
        // no longer covers the key, retry from the top.
        let leaf_raw = *path.last().expect("path non-empty");
        // SAFETY: locked leaf.
        let leaf = unsafe { nref(leaf_raw) };
        if !self.leaf_covers(leaf, key) {
            unlock_all(&path);
            return self.insert(key, value).map(|_| ());
        }
        if let Ok(i) = self.search_node(leaf, key) {
            leaf.entries[i][1].store(value, Ordering::Release);
            persist::persist_obj_fenced(&leaf.entries[i][1]);
            unlock_all(&path);
            return Ok(());
        }

        // Split the leaf, then insert, then cascade separators upward.
        let word = self.encode_key(key)?;
        let mut level = path.len() - 1;
        let mut carry: Option<(u64, u64)> = Some((word, value)); // into current node
        let mut pending_sep: Option<(u64, u64)> = None; // separator for parent
        loop {
            let nraw = path[level];
            // SAFETY: locked node on path.
            let node = unsafe { nref(nraw) };
            if let Some((sw, sv)) = pending_sep.take() {
                carry = Some((sw, sv));
            }
            let Some((cw, cv)) = carry.take() else { break };
            if node.count() < FF_SLOTS {
                let pos = match self.search_node_word(node, cw) {
                    Ok(p) | Err(p) => p,
                };
                self.shift_insert(node, pos, cw, cv);
                break;
            }
            // Split: upper half to a new sibling. The separator is the
            // middle key (promoted out of internal nodes, duplicated for
            // leaves).
            let sep_word = node.key_word(node.count() / 2);
            let new_raw = self.split_node(nraw, node)?;
            // SAFETY: fresh split sibling (parent still locked).
            let new_node = unsafe { nref(new_raw) };
            // Insert the carried entry into the correct half.
            let target = if self.cmp_word(cw, sep_word) == std::cmp::Ordering::Less {
                node
            } else {
                new_node
            };
            let pos = match self.search_node_word(target, cw) {
                Ok(p) | Err(p) => p,
            };
            self.shift_insert(target, pos, cw, cv);

            if level == 0 {
                // Split the root: allocate a new root.
                let root_cell = self.pool.allocator().root(0);
                let old_root = nraw;
                self.pool
                    .allocator()
                    .malloc_to(NODE_SIZE, root_cell, |rp| {
                        // SAFETY: fresh NODE_SIZE allocation.
                        unsafe {
                            init_node(rp, false);
                            let r = &*(rp as *const Node);
                            r.leftmost.store(old_root, Ordering::Relaxed);
                            r.entries[0][0].store(sep_word, Ordering::Relaxed);
                            r.entries[0][1].store(new_raw, Ordering::Relaxed);
                            r.meta.store(1 << 1, Ordering::Relaxed);
                        }
                    })?;
                break;
            }
            // Cascade: the separator goes into the parent as (sep, new_raw).
            pending_sep = Some((sep_word, new_raw));
            level -= 1;
        }
        unlock_all(&path);
        Ok(())
    }

    /// Word-level comparison (avoids decode for separators).
    fn cmp_word(&self, a: u64, b: u64) -> std::cmp::Ordering {
        match self.mode {
            KeyMode::Integer => a.cmp(&b),
            KeyMode::String => {
                let kb = self.decode_key(b);
                self.cmp_key(a, &kb)
            }
        }
    }

    /// Position of an encoded word in a node.
    fn search_node_word(&self, node: &Node, word: u64) -> std::result::Result<usize, usize> {
        let n = node.count();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cmp_word(node.key_word(mid), word) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Splits `node`, moving its upper half to a new right sibling; returns
    /// the sibling. Persistence order: new node fully persisted, then linked
    /// via the sibling pointer, then the count shrink (FAIR).
    ///
    /// For internal nodes the first upper-half key is promoted as separator:
    /// its child becomes the new node's leftmost child.
    fn split_node(&self, _raw: u64, node: &Node) -> Result<u64> {
        let n = node.count();
        let half = n / 2;
        let is_leaf = node.is_leaf();
        let old_sibling = node.sibling.load(Ordering::Acquire);
        let ptr = self.pool.allocator().alloc(NODE_SIZE)?;
        // SAFETY: fresh NODE_SIZE allocation; private until linked.
        unsafe {
            init_node(ptr.as_mut_ptr(), is_leaf);
            let newn = &*(ptr.as_ptr() as *const Node);
            let src_start = if is_leaf { half } else { half + 1 };
            for (j, i) in (src_start..n).enumerate() {
                newn.entries[j][0].store(node.key_word(i), Ordering::Relaxed);
                newn.entries[j][1].store(node.value(i), Ordering::Relaxed);
            }
            if !is_leaf {
                newn.leftmost.store(node.value(half), Ordering::Relaxed);
            }
            newn.sibling.store(old_sibling, Ordering::Relaxed);
            let cnt = (n - src_start) as u64;
            newn.meta
                .store((cnt << 1) | is_leaf as u64, Ordering::Relaxed);
        }
        persist::persist(ptr.as_ptr(), NODE_SIZE);
        persist::fence();
        let new_raw = ptr.raw();
        node.sibling.store(new_raw, Ordering::Release);
        persist::persist_obj_fenced(&node.sibling);
        node.set_count(half);
        persist::fence();
        Ok(new_raw)
    }

    /// Live pairs — O(n), tests only.
    pub fn len(&self) -> usize {
        let mut raw = self.root_raw();
        // Find leftmost leaf.
        // SAFETY: root exists; traversal is test-only single-threaded.
        unsafe {
            while !nref(raw).is_leaf() {
                raw = nref(raw).leftmost.load(Ordering::Acquire);
            }
            let mut n = 0;
            while raw != 0 {
                n += nref(raw).count();
                raw = nref(raw).sibling.load(Ordering::Acquire);
            }
            n
        }
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl obsv::OpRecorder for FastFair {
    fn op_histograms(&self) -> &obsv::OpHistograms {
        &self.ops
    }
}

/// Initializes a node in place.
///
/// # Safety
///
/// `raw` must be a fresh exclusive allocation of `NODE_SIZE` bytes.
unsafe fn init_node(raw: *mut u8, is_leaf: bool) {
    // SAFETY: zeroing is a valid initial state; per caller contract.
    unsafe {
        raw.write_bytes(0, NODE_SIZE);
        let node = &mut *(raw as *mut Node);
        node.meta = AtomicU64::new(is_leaf as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn integer_crud_and_scan() {
        let t = FastFair::create("ff-int", 256 << 20, KeyMode::Integer).unwrap();
        let mut model = BTreeMap::new();
        let mut x = 99u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 10_000;
            let old = t.insert(&k.to_be_bytes(), i).unwrap();
            assert_eq!(old, model.insert(k, i), "insert {k}");
        }
        for (&k, &v) in &model {
            assert_eq!(t.lookup(&k.to_be_bytes()), Some(v), "lookup {k}");
        }
        assert_eq!(t.len(), model.len());
        // Scan check.
        let got: Vec<u64> = t
            .scan(&500u64.to_be_bytes(), 25)
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        let expect: Vec<u64> = model.range(500..).take(25).map(|(&k, _)| k).collect();
        assert_eq!(got, expect);
        t.destroy();
    }

    #[test]
    fn string_mode_roundtrip() {
        let t = FastFair::create("ff-str", 256 << 20, KeyMode::String).unwrap();
        let keys: Vec<String> = (0..2000)
            .map(|i| format!("user{:06}", i * 7 % 3000))
            .collect();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let old = t.insert(k.as_bytes(), i as u64).unwrap();
            assert_eq!(old, model.insert(k.clone(), i as u64));
        }
        for (k, &v) in &model {
            assert_eq!(t.lookup(k.as_bytes()), Some(v));
        }
        let got = t.scan(b"user000100", 10);
        let expect: Vec<(Vec<u8>, u64)> = model
            .range("user000100".to_string()..)
            .take(10)
            .map(|(k, v)| (k.clone().into_bytes(), *v))
            .collect();
        assert_eq!(got, expect);
        t.destroy();
    }

    #[test]
    fn remove_shifts_left() {
        let t = FastFair::create("ff-del", 64 << 20, KeyMode::Integer).unwrap();
        for i in 0..100u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        for i in (0..100u64).step_by(2) {
            assert_eq!(t.remove(&i.to_be_bytes()).unwrap(), Some(i));
        }
        for i in 0..100u64 {
            let expect = (i % 2 == 1).then_some(i);
            assert_eq!(t.lookup(&i.to_be_bytes()), expect);
        }
        assert_eq!(t.len(), 50);
        t.destroy();
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = FastFair::create("ff-conc", 256 << 20, KeyMode::Integer).unwrap();
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..4000u64 {
                    let k = tid * 100_000 + i;
                    t.insert(&k.to_be_bytes(), k).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for tid in 0..6u64 {
            for i in (0..4000u64).step_by(13) {
                let k = tid * 100_000 + i;
                assert_eq!(t.lookup(&k.to_be_bytes()), Some(k));
            }
        }
        assert_eq!(t.len(), 24_000);
        t.destroy();
    }
}
