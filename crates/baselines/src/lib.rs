//! State-of-the-art persistent index baselines from the PACTree paper (§2.2,
//! §6), reimplemented on the shared [`pmem`] substrate so that bandwidth,
//! allocation, and SMO comparisons against PACTree are apples-to-apples:
//!
//! * [`fastfair`] — FastFair (FAST'18): a lock-based persistent B+tree with
//!   failure-atomic shift inserts and sorted leaf nodes. Embeds integer
//!   key-value pairs in leaves (fast integer scans), but stores only
//!   pointers for string keys (the pointer-chasing penalty §6.1 observes).
//! * [`bztree`] — BzTree (VLDB'18): a lock-free B+tree built on [`pmwcas`],
//!   a persistent multi-word compare-and-swap. High allocation volume and
//!   ~15 flushes per insert (the paper's GA3/GA4 analysis).
//! * [`fptree`] — FPTree (SIGMOD'16): a DRAM-NVM hybrid B+tree with
//!   reconstructable DRAM internal nodes, fingerprinted NVM leaves, and HTM
//!   concurrency — here backed by [`htm`], a software HTM simulation whose
//!   capacity/conflict aborts reproduce Figure 6.

pub mod bztree;
pub mod fastfair;
pub mod fptree;
pub mod htm;
pub mod pmwcas;
