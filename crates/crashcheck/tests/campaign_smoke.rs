//! End-to-end campaign smoke tests: short seeded campaigns must explore
//! crash states without oracle violations for the PAC indexes, and replay
//! files must round-trip deterministically.

use std::time::Duration;

use crashcheck::{run_campaign, CampaignOpts, IndexKind};

fn smoke_opts(kind: IndexKind, seed: u64) -> CampaignOpts {
    let mut opts = CampaignOpts::new(kind, seed);
    opts.budget = Duration::from_secs(20);
    opts.target_states = 400;
    opts.ops = 60;
    opts.keyspace = 24;
    opts
}

fn assert_clean(kind: IndexKind, seed: u64) {
    let summary = run_campaign(&smoke_opts(kind, seed)).expect("campaign");
    assert!(
        summary.states >= 400,
        "{}: only {} states explored",
        kind.name(),
        summary.states
    );
    assert!(
        summary.windows > 10,
        "{}: too few crash points",
        kind.name()
    );
    assert!(
        summary.violations.is_empty(),
        "{}: oracle violations: {}",
        kind.name(),
        summary.violations[0].replay.violation
    );
}

#[test]
fn pactree_campaign_is_clean() {
    assert_clean(IndexKind::PacTree, 1001);
}

/// The version-chain campaign: snapshots every 16 ops keep the freeze/COW
/// machinery live across the whole workload, so the enumerated crash
/// states land mid-freeze and mid-path-copy. The traced run also verifies
/// every snapshot's view against a shadow model (a panic there fails the
/// campaign before any crash state is tested), and the oracle then holds
/// recovery to the same durable-linearizability bar as the plain campaign.
#[test]
fn pactree_version_chain_campaign_is_clean() {
    let mut opts = smoke_opts(IndexKind::PacTree, 1004);
    opts.snapshot_every = 16;
    let summary = run_campaign(&opts).expect("campaign");
    assert!(
        summary.states >= 400,
        "only {} states explored",
        summary.states
    );
    assert!(
        summary.violations.is_empty(),
        "version-chain oracle violations: {}",
        summary.violations[0].replay.violation
    );
}

/// FastFair's unfenced cross-line shift is a known durable-linearizability
/// gap (the RECIPE/Witcher class of finding): when the campaign flags it,
/// the shrunk replay must reproduce the violation deterministically.
#[test]
fn fastfair_findings_replay_deterministically() {
    let mut opts = CampaignOpts::new(IndexKind::FastFair, 7);
    opts.budget = Duration::from_secs(30);
    opts.target_states = 1500;
    opts.max_violations = 1;
    let summary = run_campaign(&opts).expect("campaign");
    let Some(found) = summary.violations.first() else {
        return; // clean at this seed: nothing to replay
    };
    let reproduced = crashcheck::run_replay(&found.replay).expect("replay machinery");
    assert!(
        reproduced.is_some(),
        "shrunk replay failed to reproduce: {}",
        found.replay.violation
    );
}

#[test]
fn pdl_art_campaign_is_clean() {
    assert_clean(IndexKind::PdlArt, 1002);
}

#[test]
fn fptree_campaign_is_clean() {
    assert_clean(IndexKind::FpTree, 1003);
}
