//! First crash-recovery coverage for the baseline indexes (FastFair,
//! BzTree, FPTree): insert through the adapter, crash every backing pool
//! with random cache-eviction noise, remount + recover, and verify every
//! acknowledged key, scan order, and post-recovery writability.
//!
//! PACTree and PDL-ART get the same treatment here for symmetry, though
//! they also have deeper coverage in `crates/pactree/tests/crash_recovery.rs`.

use crashcheck::adapter::{destroy_pools, IndexKind};
use pmem::crash::{crash_all, evict_random_lines};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn insert_crash_recover_verify(kind: IndexKind, seed: u64) {
    let name = format!("bl-rec-{}", kind.name());
    let idx = kind.create(&name, 4 << 20).expect("create");
    let keys: Vec<u64> = (1..=200u64).collect();
    for &k in &keys {
        idx.insert(k, k * 2).expect("insert");
    }
    idx.quiesce();
    let pools = idx.pools();
    drop(idx);
    pmem::persist::fence();

    // Spontaneous cache writebacks before the power failure: persists lines
    // the program never flushed, so recovery must tolerate them.
    let mut rng = StdRng::seed_from_u64(seed);
    for p in &pools {
        evict_random_lines(p, 64, &mut rng);
    }
    crash_all(&pools, false);

    let rec = kind.recover(&name, 4 << 20).expect("recover");
    for &k in &keys {
        assert_eq!(rec.lookup(k), Some(k * 2), "{}: key {k}", kind.name());
    }
    let scan = rec.scan_all(1024);
    assert_eq!(scan.len(), keys.len(), "{}: scan count", kind.name());
    assert!(
        scan.windows(2).all(|w| w[0].0 < w[1].0),
        "{}: scan sorted",
        kind.name()
    );
    // The recovered index accepts new writes.
    rec.insert(10_000, 7).expect("post-recovery insert");
    assert_eq!(rec.lookup(10_000), Some(7));
    drop(rec);
    destroy_pools(&pools);
}

#[test]
fn fastfair_insert_crash_recover() {
    insert_crash_recover_verify(IndexKind::FastFair, 11);
}

#[test]
fn bztree_insert_crash_recover() {
    insert_crash_recover_verify(IndexKind::BzTree, 12);
}

#[test]
fn fptree_insert_crash_recover() {
    insert_crash_recover_verify(IndexKind::FpTree, 13);
}

#[test]
fn pactree_insert_crash_recover() {
    insert_crash_recover_verify(IndexKind::PacTree, 14);
}

#[test]
fn pdl_art_insert_crash_recover() {
    insert_crash_recover_verify(IndexKind::PdlArt, 15);
}

/// Recovery after a crash with *no* surviving unflushed data: a fresh
/// index crashed immediately after setup must come back empty and usable.
#[test]
fn recover_empty_index() {
    for kind in IndexKind::all() {
        let name = format!("bl-empty-{}", kind.name());
        let idx = kind.create(&name, 2 << 20).expect("create");
        idx.quiesce();
        let pools = idx.pools();
        drop(idx);
        pmem::persist::fence();
        crash_all(&pools, false);
        let rec = kind.recover(&name, 2 << 20).expect("recover");
        assert_eq!(rec.scan_all(16), vec![], "{}", kind.name());
        rec.insert(1, 2).expect("insert after empty recovery");
        assert_eq!(rec.lookup(1), Some(2));
        drop(rec);
        destroy_pools(&pools);
    }
}
