//! Trace-driven crash-state model checking for the workspace's persistent
//! indexes.
//!
//! The paper validates recovery by killing a process at ~100 random points
//! (§6.8). That samples crash states thinly: the dangerous states are
//! *specific subsets* of unflushed cache lines around a fence, and random
//! process kills rarely land on them. This crate enumerates those states
//! systematically from a **single traced execution**:
//!
//! 1. [`pmem::trace`] (feature `trace`) records every flushed cache line
//!    with its media pre-image, every fence, and allocator ops.
//! 2. [`enumerate`] rewinds the final media image backwards fence by
//!    fence; inside each window, any subset of flushed lines may have
//!    reached media, each at one of its point-in-time snapshots —
//!    exhaustive when the product is small, seeded sampling beyond.
//! 3. Every candidate image is loaded into the pools, the index's own
//!    recovery runs ([`adapter::IndexKind::recover`]), and [`oracle`]
//!    checks durable linearizability against the [`journal`] of
//!    acknowledged operations.
//! 4. Failing states are [`shrink`]-minimized and serialized to replay
//!    files that [`campaign::run_replay`] reproduces deterministically.
//!
//! [`campaign::run_campaign`] packages all of it into a seeded,
//! time-budgeted run with a one-line JSON summary.

pub mod adapter;
pub mod campaign;
pub mod enumerate;
pub mod journal;
pub mod oracle;
pub mod shrink;
pub mod workload;

pub use adapter::{CheckableIndex, IndexKind};
pub use campaign::{run_campaign, run_replay, CampaignOpts, CampaignSummary};
pub use shrink::Replay;
pub use workload::WorkloadSpec;
