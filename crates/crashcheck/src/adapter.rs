//! Uniform adapter over every index in the workspace.
//!
//! The checker drives all five indexes through one trait with `u64` keys
//! (encoded big-endian for the byte-keyed indexes, so integer order and
//! byte order agree). Each [`IndexKind`] knows how to create a fresh
//! crash-simulating instance and how to re-attach to the surviving pools
//! after a simulated crash — the exact code path a real restart would run.

use std::sync::Arc;

use baselines::bztree::BzTree;
use baselines::fastfair::FastFair;
use baselines::fastfair::KeyMode;
use baselines::fptree::FpTree;
use pactree::tree::{PacTree, PacTreeConfig};
use pdl_art::{PdlArt, PdlArtConfig};
use pmem::pool::{self, PmemPool};
use pmem::{AllocMode, Result};

/// A checkable index instance: `u64` keys, `u64` values.
pub trait CheckableIndex: Send + Sync {
    /// Every pool backing the instance, in a stable order.
    fn pools(&self) -> Vec<Arc<PmemPool>>;
    /// Upsert; returns the previous value if the key existed.
    fn insert(&self, key: u64, value: u64) -> Result<Option<u64>>;
    /// Delete; returns the removed value if the key existed.
    fn remove(&self, key: u64) -> Result<Option<u64>>;
    /// Point lookup.
    fn lookup(&self, key: u64) -> Option<u64>;
    /// Full ordered scan (up to `cap` pairs).
    fn scan_all(&self, cap: usize) -> Vec<(u64, u64)>;
    /// Finishes background work so a final fence closes the trace cleanly.
    fn quiesce(&self) {}

    // -- MVCC hooks (only versioned indexes override; defaults = none) -----

    /// Captures an O(1) point-in-time view and returns its id, or `None`
    /// if the index has no multi-version support.
    fn snapshot(&self) -> Option<u64> {
        None
    }
    /// Full ordered scan (up to `cap` pairs) as of snapshot `snap`;
    /// `None` if snapshots are unsupported or the id is unknown.
    fn scan_at_all(&self, _snap: u64, _cap: usize) -> Option<Vec<(u64, u64)>> {
        None
    }
    /// Releases a captured view; returns whether the id named a live one.
    fn release_snapshot(&self, _snap: u64) -> bool {
        false
    }
}

/// The five indexes the checker knows how to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    PacTree,
    PdlArt,
    FastFair,
    BzTree,
    FpTree,
}

impl IndexKind {
    /// All kinds, in the order campaigns run them.
    pub fn all() -> [IndexKind; 5] {
        [
            IndexKind::PacTree,
            IndexKind::PdlArt,
            IndexKind::FastFair,
            IndexKind::BzTree,
            IndexKind::FpTree,
        ]
    }

    /// Stable lowercase name (used in CLI args, replay files, JSON).
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::PacTree => "pactree",
            IndexKind::PdlArt => "pdl-art",
            IndexKind::FastFair => "fastfair",
            IndexKind::BzTree => "bztree",
            IndexKind::FpTree => "fptree",
        }
    }

    /// Parses a [`name`](Self::name) back to a kind.
    pub fn parse(s: &str) -> Option<IndexKind> {
        IndexKind::all().into_iter().find(|k| k.name() == s)
    }

    /// Creates a fresh crash-simulating instance backed by pools named after
    /// `name`. Single data pool, synchronous SMOs: the checker needs a
    /// deterministic, single-threaded execution.
    pub fn create(self, name: &str, pool_size: usize) -> Result<Box<dyn CheckableIndex>> {
        Ok(match self {
            IndexKind::PacTree => Box::new(PacTreeAdapter(PacTree::create(Self::pactree_config(
                name, pool_size,
            ))?)),
            IndexKind::PdlArt => Box::new(PdlArtAdapter(PdlArt::create(PdlArtConfig {
                name: name.to_string(),
                pool_size,
                crash_sim: true,
                alloc_mode: AllocMode::CrashConsistent,
            })?)),
            IndexKind::FastFair => Box::new(FastFairAdapter(FastFair::create_durable(
                name,
                pool_size,
                KeyMode::Integer,
            )?)),
            IndexKind::BzTree => Box::new(BzTreeAdapter(BzTree::create_durable(
                name,
                pool_size,
                KeyMode::Integer,
            )?)),
            IndexKind::FpTree => Box::new(FpTreeAdapter(FpTree::create_durable(name, pool_size)?)),
        })
    }

    /// Re-attaches to the (crashed-and-remounted) pools of `name`, running
    /// the index's own recovery procedure.
    pub fn recover(self, name: &str, pool_size: usize) -> Result<Box<dyn CheckableIndex>> {
        Ok(match self {
            IndexKind::PacTree => Box::new(PacTreeAdapter(PacTree::recover(
                Self::pactree_config(name, pool_size),
            )?)),
            IndexKind::PdlArt => Box::new(PdlArtAdapter(PdlArt::recover(name)?)),
            IndexKind::FastFair => {
                Box::new(FastFairAdapter(FastFair::recover(name, KeyMode::Integer)?))
            }
            IndexKind::BzTree => Box::new(BzTreeAdapter(BzTree::recover(name, KeyMode::Integer)?)),
            IndexKind::FpTree => Box::new(FpTreeAdapter(FpTree::recover(name)?)),
        })
    }

    fn pactree_config(name: &str, pool_size: usize) -> PacTreeConfig {
        PacTreeConfig {
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
            ..PacTreeConfig::named(name)
        }
        .with_pool_size(pool_size)
        .with_numa_pools(1)
        .with_async_smo(false)
    }
}

/// Unregisters every pool in `pools` (end of a campaign episode).
pub fn destroy_pools(pools: &[Arc<PmemPool>]) {
    for p in pools {
        pool::destroy_pool(p.id());
    }
}

fn be(key: u64) -> [u8; 8] {
    key.to_be_bytes()
}

fn un_be(key: &[u8]) -> Option<u64> {
    key.try_into().ok().map(u64::from_be_bytes)
}

/// Decodes byte-keyed scan output; a key that is not 8 bytes maps to
/// `u64::MAX` so the oracle flags it as a phantom instead of panicking.
fn decode_pairs(pairs: Vec<(Vec<u8>, u64)>) -> Vec<(u64, u64)> {
    pairs
        .into_iter()
        .map(|(k, v)| (un_be(&k).unwrap_or(u64::MAX), v))
        .collect()
}

/// Generates a `CheckableIndex` newtype over `Arc<$inner>`. The five
/// adapters are identical except for key encoding, pool enumeration, the
/// scan entry point, and optional quiesce/MVCC hooks — exactly the
/// expressions the macro takes (each a `|binding| expr` evaluated with the
/// binding bound to `&self.0`, or to the `u64` key for `key:`).
macro_rules! checkable_adapter {
    ($name:ident, $inner:ty,
     key: |$k:ident| $key:expr,
     pools: |$tp:ident| $pools:expr,
     scan: |$ts:ident, $cap:ident| $scan:expr
     $(, quiesce: |$tq:ident| $quiesce:expr)?
     $(, snapshot: |$tn:ident| $snapshot:expr,
        scan_at: |$ta:ident, $snap:ident, $acap:ident| $scan_at:expr,
        release: |$tr:ident, $rsnap:ident| $release:expr)?
     $(,)?) => {
        struct $name(Arc<$inner>);

        impl CheckableIndex for $name {
            fn pools(&self) -> Vec<Arc<PmemPool>> {
                let $tp = &self.0;
                $pools
            }
            fn insert(&self, key: u64, value: u64) -> Result<Option<u64>> {
                let $k = key;
                self.0.insert($key, value)
            }
            fn remove(&self, key: u64) -> Result<Option<u64>> {
                let $k = key;
                self.0.remove($key)
            }
            fn lookup(&self, key: u64) -> Option<u64> {
                let $k = key;
                self.0.lookup($key)
            }
            fn scan_all(&self, cap: usize) -> Vec<(u64, u64)> {
                let ($ts, $cap) = (&self.0, cap);
                $scan
            }
            $(fn quiesce(&self) {
                let $tq = &self.0;
                $quiesce
            })?
            $(fn snapshot(&self) -> Option<u64> {
                let $tn = &self.0;
                $snapshot
            }
            fn scan_at_all(&self, snap: u64, cap: usize) -> Option<Vec<(u64, u64)>> {
                let ($ta, $snap, $acap) = (&self.0, snap, cap);
                $scan_at
            }
            fn release_snapshot(&self, snap: u64) -> bool {
                let ($tr, $rsnap) = (&self.0, snap);
                $release
            })?
        }
    };
}

checkable_adapter!(PacTreeAdapter, PacTree,
    key: |k| &be(k),
    pools: |t| t.pools(),
    scan: |t, cap| decode_pairs(
        t.scan(&[], cap).into_iter().map(|p| (p.key, p.value)).collect(),
    ),
    quiesce: |t| t.stop_updater(),
    snapshot: |t| Some(t.snapshot()),
    scan_at: |t, snap, cap| t.scan_at(snap, &[], cap).map(|ps| decode_pairs(
        ps.into_iter().map(|p| (p.key, p.value)).collect(),
    )),
    release: |t, snap| t.release_snapshot(snap),
);

checkable_adapter!(PdlArtAdapter, PdlArt,
    key: |k| &be(k),
    pools: |t| vec![Arc::clone(t.pool())],
    scan: |t, cap| decode_pairs(t.scan(&[], cap)),
);

checkable_adapter!(FastFairAdapter, FastFair,
    key: |k| &be(k),
    pools: |t| vec![Arc::clone(t.pool())],
    scan: |t, cap| decode_pairs(t.scan(&be(0), cap)),
);

checkable_adapter!(BzTreeAdapter, BzTree,
    key: |k| &be(k),
    pools: |t| vec![Arc::clone(t.pool())],
    scan: |t, cap| decode_pairs(t.scan(&be(0), cap)),
);

checkable_adapter!(FpTreeAdapter, FpTree,
    key: |k| k,
    pools: |t| vec![Arc::clone(t.pool())],
    scan: |t, cap| t.scan(0, cap),
);
