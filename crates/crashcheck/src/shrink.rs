//! Shrinking failing crash states and serializing them for replay.
//!
//! A failing state is a choice vector over the window's lines. The shrinker
//! greedily reverts each line to its *fully flushed* option (the benign
//! default) and keeps the reversion whenever the violation still
//! reproduces, converging on a minimal set of deliberately stale lines —
//! usually the one or two cache lines whose ordering the index got wrong.
//!
//! The replay file is a small line-oriented text format; everything needed
//! to reproduce deterministically is in it: the index, the workload spec
//! (ops are regenerated from the seed), the crash window's fence sequence
//! and the per-line option choices.

use crate::enumerate::Window;
use crate::workload::WorkloadSpec;

/// Reverts choices toward fully flushed while `fails` keeps returning true.
/// Returns the shrunk choice vector; `fails` is called O(lines · passes).
pub fn shrink(window: &Window, choices: &[u32], mut fails: impl FnMut(&[u32]) -> bool) -> Vec<u32> {
    let last = window.last_choices();
    let mut cur = choices.to_vec();
    loop {
        let mut changed = false;
        for i in 0..cur.len() {
            if cur[i] == last[i] {
                continue;
            }
            let saved = cur[i];
            cur[i] = last[i];
            if fails(&cur) {
                changed = true;
            } else {
                cur[i] = saved;
            }
        }
        if !changed {
            return cur;
        }
    }
}

/// A serialized failing crash state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Replay {
    /// [`IndexKind::name`](crate::adapter::IndexKind::name) of the index.
    pub index: String,
    /// The workload that produced the trace.
    pub spec: WorkloadSpec,
    /// Start-fence sequence of the crash window.
    pub fence_seq: u64,
    /// `(pool index, line offset, option index)` for every line whose
    /// chosen option differs from fully flushed.
    pub stale: Vec<(usize, u64, u32)>,
    /// The violation message the state produced.
    pub violation: String,
}

impl Replay {
    /// Serializes to the replay text format.
    pub fn serialize(&self) -> String {
        let mut s = String::new();
        s.push_str("crashcheck-replay v1\n");
        s.push_str(&format!("index {}\n", self.index));
        s.push_str(&format!("seed {}\n", self.spec.seed));
        s.push_str(&format!("keyspace {}\n", self.spec.keyspace));
        s.push_str(&format!("ops {}\n", self.spec.ops));
        s.push_str(&format!("pool_size {}\n", self.spec.pool_size));
        // Emitted only when set, so version-chain-free replays stay
        // readable by older checkers.
        if self.spec.snapshot_every != 0 {
            s.push_str(&format!("snapshot_every {}\n", self.spec.snapshot_every));
        }
        s.push_str(&format!("fence_seq {}\n", self.fence_seq));
        for &(pool, line, opt) in &self.stale {
            s.push_str(&format!("stale {pool} {line} {opt}\n"));
        }
        s.push_str(&format!(
            "violation {}\n",
            self.violation.replace('\n', " ")
        ));
        s
    }

    /// Parses the replay text format.
    pub fn parse(text: &str) -> Result<Replay, String> {
        let mut lines = text.lines();
        if lines.next() != Some("crashcheck-replay v1") {
            return Err("not a crashcheck-replay v1 file".to_string());
        }
        let mut index = None;
        let mut seed = None;
        let mut keyspace = None;
        let mut ops = None;
        let mut pool_size = None;
        let mut snapshot_every = 0usize;
        let mut fence_seq = None;
        let mut stale = Vec::new();
        let mut violation = String::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (field, rest) = line.split_once(' ').unwrap_or((line, ""));
            let num = |s: &str| s.parse::<u64>().map_err(|e| format!("{field}: {e}"));
            match field {
                "index" => index = Some(rest.to_string()),
                "seed" => seed = Some(num(rest)?),
                "keyspace" => keyspace = Some(num(rest)?),
                "ops" => ops = Some(num(rest)? as usize),
                "pool_size" => pool_size = Some(num(rest)? as usize),
                "snapshot_every" => snapshot_every = num(rest)? as usize,
                "fence_seq" => fence_seq = Some(num(rest)?),
                "stale" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    if parts.len() != 3 {
                        return Err(format!("malformed stale line: {line}"));
                    }
                    stale.push((
                        num(parts[0])? as usize,
                        num(parts[1])?,
                        num(parts[2])? as u32,
                    ));
                }
                "violation" => violation = rest.to_string(),
                other => return Err(format!("unknown field: {other}")),
            }
        }
        let missing = |f: &str| format!("missing field: {f}");
        Ok(Replay {
            index: index.ok_or_else(|| missing("index"))?,
            spec: WorkloadSpec {
                seed: seed.ok_or_else(|| missing("seed"))?,
                keyspace: keyspace.ok_or_else(|| missing("keyspace"))?,
                ops: ops.ok_or_else(|| missing("ops"))?,
                pool_size: pool_size.ok_or_else(|| missing("pool_size"))?,
                snapshot_every,
            },
            fence_seq: fence_seq.ok_or_else(|| missing("fence_seq"))?,
            stale,
            violation,
        })
    }

    /// Converts a full choice vector into the sparse stale list.
    pub fn stale_from_choices(window: &Window, choices: &[u32]) -> Vec<(usize, u64, u32)> {
        let last = window.last_choices();
        window
            .lines
            .iter()
            .zip(choices)
            .zip(&last)
            .filter(|&((_, &c), &l)| c != l)
            .map(|((line, &c), _)| (line.pool, line.line, c))
            .collect()
    }

    /// Expands the sparse stale list back into a full choice vector for
    /// `window`; errors if a stale line does not exist in the window.
    pub fn choices_for(&self, window: &Window) -> Result<Vec<u32>, String> {
        let mut choices = window.last_choices();
        for &(pool, line, opt) in &self.stale {
            let i = window
                .lines
                .iter()
                .position(|l| l.pool == pool && l.line == line)
                .ok_or_else(|| {
                    format!("stale line (pool {pool}, offset {line}) not in crash window")
                })?;
            if opt as usize >= window.lines[i].options.len() {
                return Err(format!(
                    "option {opt} out of range for line (pool {pool}, offset {line})"
                ));
            }
            choices[i] = opt;
        }
        Ok(choices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_roundtrip() {
        let r = Replay {
            index: "pactree".to_string(),
            spec: WorkloadSpec {
                seed: 42,
                keyspace: 48,
                ops: 160,
                pool_size: 2 << 20,
                snapshot_every: 0,
            },
            fence_seq: 1234,
            stale: vec![(0, 4096, 0), (2, 64, 1)],
            violation: "torn-value: lookup(3) = None".to_string(),
        };
        let text = r.serialize();
        assert!(!text.contains("snapshot_every"));
        assert_eq!(Replay::parse(&text).unwrap(), r);

        let versioned = Replay {
            spec: WorkloadSpec {
                snapshot_every: 16,
                ..r.spec
            },
            ..r
        };
        let text = versioned.serialize();
        assert!(text.contains("snapshot_every 16\n"));
        assert_eq!(Replay::parse(&text).unwrap(), versioned);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Replay::parse("hello").is_err());
        assert!(Replay::parse("crashcheck-replay v1\nindex x\n").is_err());
        assert!(Replay::parse("crashcheck-replay v1\nbogus 1\n").is_err());
    }
}
