//! Crash-state enumeration by rewinding flush pre-images.
//!
//! ADR semantics: stores sit in the volatile cache until a `persist`
//! (clwb) pushes the line toward media, and only a `fence` (sfence) makes
//! previously pushed lines durable. A power failure between fence `F_a`
//! and the next fence `F_b` therefore exposes:
//!
//! * everything fenced by `F_a` — durable for sure, and
//! * for each cache line flushed inside the window, *one* of its
//!   point-in-time snapshots: the line's content at `F_a`, or its content
//!   at any flush of that line inside the window. A line is written to
//!   media atomically, so within-line choices are snapshots, not arbitrary
//!   byte mixes — but choices *across* different lines are independent,
//!   which is exactly where torn multi-line protocols break.
//!
//! Each [`TraceEvent::Flush`] carries the media pre-image of its line, so
//! a single traced execution suffices: starting from the final media image
//! and walking the trace backwards, undoing flushes one by one, every
//! window's baseline and every line's intermediate snapshots are
//! recovered without re-running the workload.

use std::collections::HashMap;

use pmem::pool::PoolId;
use pmem::trace::{Trace, TraceEvent};
use pmem::CACHE_LINE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The crash choices of one cache line inside one window.
pub struct LineOpts {
    /// Index of the pool in the run's pool order.
    pub pool: usize,
    /// Line-aligned pool offset.
    pub line: u64,
    /// Admissible media snapshots, oldest first; the last entry is the
    /// line's fully flushed content at the window's end fence.
    pub options: Vec<[u8; CACHE_LINE]>,
}

/// One crash window: the fence that closes the durable prefix plus the
/// per-line choices a crash inside the window can leave on media.
pub struct Window {
    /// Sequence number of the window's *start* fence: the durable prefix.
    pub fence_seq: u64,
    /// Lines flushed inside the window (empty = only the trivial state).
    pub lines: Vec<LineOpts>,
}

impl Window {
    /// Number of distinct crash states (saturating).
    pub fn state_count(&self) -> u128 {
        self.lines
            .iter()
            .fold(1u128, |acc, l| acc.saturating_mul(l.options.len() as u128))
    }

    /// The fully flushed choice vector (one index per line).
    pub fn last_choices(&self) -> Vec<u32> {
        self.lines
            .iter()
            .map(|l| l.options.len() as u32 - 1)
            .collect()
    }

    /// Advances `choices` as a mixed-radix counter; returns false after the
    /// last combination wraps back to all-zero.
    pub fn next_choices(&self, choices: &mut [u32]) -> bool {
        for (c, l) in choices.iter_mut().zip(&self.lines) {
            *c += 1;
            if (*c as usize) < l.options.len() {
                return true;
            }
            *c = 0;
        }
        false
    }

    /// Draws a uniformly random choice vector.
    pub fn sample_choices(&self, rng: &mut StdRng) -> Vec<u32> {
        self.lines
            .iter()
            .map(|l| rng.gen_range(0..l.options.len() as u64) as u32)
            .collect()
    }
}

/// Walks a trace backwards, yielding crash windows newest-first while
/// rewinding working copies of the pool media images in lockstep.
pub struct Rewinder {
    /// Working media images, one per pool. After [`next_window`] returns
    /// window `w`, these hold the media as of `w`'s *end* fence, so a crash
    /// state is `images` with each chosen line patched in.
    ///
    /// [`next_window`]: Self::next_window
    images: Vec<Vec<u8>>,
    events: Vec<TraceEvent>,
    /// Index into `events`: everything at or beyond has been rewound.
    cursor: usize,
    pool_index: HashMap<PoolId, usize>,
    /// With ring overflow the oldest retained window may be missing events;
    /// stop before it.
    dropped: bool,
    /// Event range of the last yielded window, whose flushes must be undone
    /// before the next (older) window is built — deferred so that `images`
    /// stays at the yielded window's end fence while states materialize.
    pending_rewind: Option<(usize, usize)>,
}

impl Rewinder {
    /// Takes the final media snapshots (taken after the closing fence) and
    /// the trace that produced them. `pool_order[i]` owns `snapshots[i]`.
    pub fn new(trace: &Trace, pool_order: &[PoolId], snapshots: Vec<Vec<u8>>) -> Rewinder {
        assert_eq!(pool_order.len(), snapshots.len());
        Rewinder {
            images: snapshots,
            cursor: trace.events.len(),
            events: trace.events.clone(),
            pool_index: pool_order
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect(),
            dropped: trace.dropped > 0,
            pending_rewind: None,
        }
    }

    /// Media images at the end fence of the most recently yielded window.
    pub fn images(&self) -> &[Vec<u8>] {
        &self.images
    }

    /// Patches `choices` into the working images, hands them to `f`, then
    /// restores the images — so enumeration can continue from clean state.
    pub fn with_state<R>(
        &mut self,
        window: &Window,
        choices: &[u32],
        f: impl FnOnce(&[Vec<u8>]) -> R,
    ) -> R {
        let mut saved: Vec<(usize, u64, [u8; CACHE_LINE])> = Vec::new();
        for (line, &choice) in window.lines.iter().zip(choices) {
            let img = &mut self.images[line.pool];
            let at = line.line as usize;
            let mut orig = [0u8; CACHE_LINE];
            orig.copy_from_slice(&img[at..at + CACHE_LINE]);
            saved.push((line.pool, line.line, orig));
            img[at..at + CACHE_LINE].copy_from_slice(&line.options[choice as usize]);
        }
        let res = f(&self.images);
        for (pool, at, orig) in saved {
            self.images[pool][at as usize..at as usize + CACHE_LINE].copy_from_slice(&orig);
        }
        res
    }

    /// Yields the next (older) crash window, rewinding past it, or `None`
    /// when the trace start (or a ring-overflow gap) is reached.
    pub fn next_window(&mut self) -> Option<Window> {
        // Undo the previous window's flushes (newest first), bringing the
        // images to that window's start fence = this window's end fence.
        if let Some((begin, end)) = self.pending_rewind.take() {
            for ev in self.events[begin..end].iter().rev() {
                if let TraceEvent::Flush {
                    pool, line, pre, ..
                } = ev
                {
                    if let Some(&pi) = self.pool_index.get(pool) {
                        let at = *line as usize;
                        self.images[pi][at..at + CACHE_LINE].copy_from_slice(pre);
                    }
                }
            }
        }

        // Find the fence pair delimiting the window that ends at `cursor`.
        let end_fence = self.events[..self.cursor]
            .iter()
            .rposition(|e| matches!(e, TraceEvent::Fence { .. }))?;
        let start_fence = self.events[..end_fence]
            .iter()
            .rposition(|e| matches!(e, TraceEvent::Fence { .. }));
        let (begin, fence_seq) = match start_fence {
            Some(i) => (i + 1, self.events[i].seq()),
            // Events before the first retained fence are unreliable when the
            // ring overflowed: the window's older flushes may be missing.
            None if self.dropped => return None,
            None => (0, 0),
        };

        // Per line (chronological): pre-images of each in-window flush, then
        // the current (= end-fence) content.
        let mut order: Vec<(usize, u64)> = Vec::new();
        let mut pres: HashMap<(usize, u64), Vec<[u8; CACHE_LINE]>> = HashMap::new();
        for ev in &self.events[begin..end_fence] {
            if let TraceEvent::Flush {
                pool, line, pre, ..
            } = ev
            {
                let Some(&pi) = self.pool_index.get(pool) else {
                    continue; // pool destroyed mid-run; not checkable
                };
                let key = (pi, *line);
                let entry = pres.entry(key).or_insert_with(|| {
                    order.push(key);
                    Vec::new()
                });
                entry.push(*pre);
            }
        }
        let mut lines = Vec::with_capacity(order.len());
        for key in order {
            let (pool, line) = key;
            let mut options = pres.remove(&key).expect("inserted above");
            let at = line as usize;
            let mut last = [0u8; CACHE_LINE];
            last.copy_from_slice(&self.images[pool][at..at + CACHE_LINE]);
            options.push(last);
            options.dedup();
            lines.push(LineOpts {
                pool,
                line,
                options,
            });
        }

        // Rewinding this window's flushes waits until the next call, so the
        // images stay at the end fence while states materialize. The next
        // (older) window ends at this window's start fence, which sits at
        // `begin - 1`; a cursor of `begin` makes it the last fence the next
        // search sees (and 0 terminates the walk).
        self.pending_rewind = Some((begin, end_fence));
        self.cursor = begin;

        Some(Window { fence_seq, lines })
    }
}

/// Returns a seeded sampler for windows too large to enumerate.
pub fn sampler(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::pool::{destroy_pool, PmemPool, PoolConfig};
    use pmem::{persist, trace};

    /// Three fenced generations of one line; the rewinder must reproduce
    /// all three media states, newest window first.
    #[test]
    fn rewind_reproduces_generations() {
        let _session = trace::session();
        let pool = PmemPool::create(PoolConfig::durable("t-rew-gen", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(64).unwrap().offset();
        let write = |b: u8| {
            // SAFETY: allocated 64 bytes.
            unsafe { pool.at(off).write_bytes(b, 64) };
            persist::persist(pool.at(off), 64);
            persist::fence();
        };
        write(0x00); // pre-trace baseline, fully fenced
        trace::start(1 << 12);
        write(0x11);
        write(0x22);
        write(0x33);
        let tr = trace::stop();
        let snap = pool.media_snapshot().unwrap();
        assert_eq!(snap[off as usize], 0x33);

        let mut rew = Rewinder::new(&tr, &[pool.id()], vec![snap]);

        // Newest window: wrote 0x33 over 0x22.
        let w = rew.next_window().unwrap();
        assert_eq!(w.lines.len(), 1);
        assert_eq!(w.lines[0].options.len(), 2);
        assert_eq!(w.lines[0].options[0][0], 0x22);
        assert_eq!(w.lines[0].options[1][0], 0x33);
        assert_eq!(w.state_count(), 2);

        let w = rew.next_window().unwrap();
        assert_eq!(w.lines[0].options[0][0], 0x11);
        assert_eq!(w.lines[0].options[1][0], 0x22);

        let w = rew.next_window().unwrap();
        assert_eq!(w.lines[0].options[0][0], 0x00);
        assert_eq!(w.lines[0].options[1][0], 0x11);

        destroy_pool(pool.id());
    }

    /// Two lines flushed in one window: 2×2 independent states; patching
    /// and restoring leaves the working image intact.
    #[test]
    fn cross_line_choices_are_independent() {
        let _session = trace::session();
        let pool = PmemPool::create(PoolConfig::durable("t-rew-cross", 1 << 20)).unwrap();
        let off = pool.allocator().alloc(128).unwrap().offset();
        // SAFETY: allocated 128 bytes.
        unsafe { pool.at(off).write_bytes(0xAA, 128) };
        persist::persist(pool.at(off), 128);
        persist::fence();
        trace::start(1 << 12);
        // SAFETY: same allocation.
        unsafe { pool.at(off).write_bytes(0xBB, 128) };
        persist::persist(pool.at(off), 128);
        persist::fence();
        let tr = trace::stop();
        let snap = pool.media_snapshot().unwrap();

        let mut rew = Rewinder::new(&tr, &[pool.id()], vec![snap]);
        let w = rew.next_window().unwrap();
        assert_eq!(w.lines.len(), 2);
        assert_eq!(w.state_count(), 4);

        let mut seen = Vec::new();
        let mut choices = vec![0u32; 2];
        loop {
            let pair = rew.with_state(&w, &choices, |imgs| {
                (imgs[0][off as usize], imgs[0][off as usize + 64])
            });
            seen.push(pair);
            if !w.next_choices(&mut choices) {
                break;
            }
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0xAA, 0xAA), (0xAA, 0xBB), (0xBB, 0xAA), (0xBB, 0xBB)]
        );
        // Restoration: the working image is back to fully flushed.
        assert_eq!(rew.images()[0][off as usize], 0xBB);
        destroy_pool(pool.id());
    }
}
