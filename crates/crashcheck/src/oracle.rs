//! Durable-linearizability oracle.
//!
//! Given a recovered index and the [`Expectation`] induced by the journal
//! at the crash point, checks:
//!
//! 1. **Recovery completes** — the caller wraps recovery in `catch_unwind`;
//!    a panic or error is reported as a violation before the oracle runs.
//! 2. **Acked survival / no torn values** — for every key any journalled op
//!    touched, the recovered value is one of the admissible ones; keys with
//!    a uniquely determined state must match exactly.
//! 3. **Scan frontier consistency** — a full scan is strictly sorted,
//!    duplicate-free, contains every determined-present key, and reports
//!    only admissible pairs (no phantom keys, no resurrected removes).
//! 4. **Writability** — the recovered index accepts and serves a fresh
//!    insert on a probe key outside the workload keyspace.

use crate::adapter::CheckableIndex;
use crate::journal::Expectation;

/// A single oracle violation (the first one found).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Short machine-readable category.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn err(kind: &'static str, detail: String) -> Result<(), Violation> {
        Err(Violation { kind, detail })
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Probe key for the writability check: far outside any workload keyspace.
pub const PROBE_KEY: u64 = 1 << 40;

/// Runs every check against a recovered index.
pub fn check(idx: &dyn CheckableIndex, expect: &Expectation) -> Result<(), Violation> {
    // Point lookups over the touched keyspace.
    for &key in expect.allowed.keys() {
        let got = idx.lookup(key);
        if !expect.admits(key, got) {
            return Violation::err(
                "torn-value",
                format!(
                    "lookup({key}) = {got:?}, admissible: {:?}",
                    expect.allowed[&key]
                ),
            );
        }
    }

    // Scan frontier.
    let cap = expect.allowed.len() * 4 + 64;
    let scan = idx.scan_all(cap);
    for pair in scan.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Violation::err(
                "scan-order",
                format!("scan not strictly sorted: {:?} then {:?}", pair[0], pair[1]),
            );
        }
    }
    for &(key, value) in &scan {
        if !expect.admits(key, Some(value)) {
            return Violation::err(
                "scan-phantom",
                format!(
                    "scan reports ({key}, {value}), admissible: {:?}",
                    expect.allowed.get(&key)
                ),
            );
        }
    }
    for (key, value) in expect.determined() {
        if let Some(v) = value {
            if !scan.contains(&(key, v)) {
                return Violation::err(
                    "scan-lost",
                    format!("acked pair ({key}, {v}) missing from scan"),
                );
            }
        }
    }

    // Scan/lookup agreement on scanned keys.
    for &(key, value) in &scan {
        let got = idx.lookup(key);
        if got != Some(value) && !expect.admits(key, got) {
            return Violation::err(
                "scan-lookup-divergence",
                format!("scan has ({key}, {value}) but lookup({key}) = {got:?}"),
            );
        }
    }

    // Writability probe.
    match idx.insert(PROBE_KEY, 2) {
        Err(e) => {
            return Violation::err(
                "post-recovery-insert",
                format!("probe insert failed: {e:?}"),
            )
        }
        Ok(_) => {
            if idx.lookup(PROBE_KEY) != Some(2) {
                return Violation::err(
                    "post-recovery-insert",
                    "probe insert not visible to lookup".to_string(),
                );
            }
        }
    }

    Ok(())
}
