//! Deterministic single-threaded workloads and traced execution.
//!
//! The checker's power comes from replaying one execution many ways, so the
//! execution itself must be reproducible: one thread, seeded ops, no
//! background SMO replay (the adapters create indexes with synchronous
//! SMOs). Given the same seed the op sequence, the trace sequence numbers
//! and the media images are all bit-identical — which is what makes replay
//! files work.

use std::sync::Arc;

use pmem::pool::PmemPool;
use pmem::{persist, trace, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adapter::IndexKind;
use crate::journal::{JournalEntry, Op};

/// Everything that defines one traced execution. Serialized into replay
/// files; two runs with equal specs produce equal traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Seed for the op generator.
    pub seed: u64,
    /// Keys are drawn from `1..=keyspace`.
    pub keyspace: u64,
    /// Number of operations.
    pub ops: usize,
    /// Size of every backing pool.
    pub pool_size: usize,
    /// Take an MVCC snapshot every this many ops (0 = never). Snapshots
    /// exercise the version chain: every mutation under a live snapshot
    /// runs the freeze/COW machinery, so the enumerated crash states cover
    /// crashes mid-freeze and mid-path-copy. Each snapshot's view is also
    /// verified against a shadow model during the traced run. Only indexes
    /// with snapshot support participate; others ignore the field.
    pub snapshot_every: usize,
}

impl WorkloadSpec {
    /// Small, dense default: enough overwrites and removes to exercise
    /// multi-step protocols, small enough that one execution traces and
    /// snapshots in well under a millisecond-scale budget slice.
    pub fn default_for(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            keyspace: 48,
            ops: 160,
            pool_size: 2 << 20,
            snapshot_every: 0,
        }
    }
}

/// Generates the deterministic op sequence for a spec.
///
/// Values are even and unique per op index (`(i + 1) * 2`), so every torn
/// or phantom value is attributable to a specific op, and the encodings of
/// all five indexes accept them (no `u64::MAX`, no low tag bits, < 2^62).
pub fn gen_ops(spec: &WorkloadSpec) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.ops)
        .map(|i| {
            let key = rng.gen_range(1..=spec.keyspace);
            if rng.gen_range(0u32..10) < 7 {
                Op::Insert {
                    key,
                    value: (i as u64 + 1) * 2,
                }
            } else {
                Op::Remove { key }
            }
        })
        .collect()
}

/// The artifacts of one traced execution.
pub struct RunArtifacts {
    /// The pools backing the (now dropped) index, in adapter order.
    pub pools: Vec<Arc<PmemPool>>,
    /// Acknowledged ops with their trace-sequence brackets.
    pub journal: Vec<JournalEntry>,
    /// The merged event trace.
    pub trace: trace::Trace,
    /// Final media image of each pool (same order as `pools`), taken after
    /// the closing fence — i.e. the fully durable end state.
    pub snapshots: Vec<Vec<u8>>,
}

/// Creates the index, runs the spec's ops under tracing, quiesces, and
/// returns the artifacts. The caller must hold [`trace::session`].
///
/// Index creation runs *before* tracing starts: the setup prologue is fully
/// fenced, so it is durable at every enumerated crash point and the oracle
/// never blames it.
pub fn run_traced(kind: IndexKind, name: &str, spec: &WorkloadSpec) -> Result<RunArtifacts> {
    let ops = gen_ops(spec);
    let idx = kind.create(name, spec.pool_size)?;
    let pools = idx.pools();
    persist::fence();

    trace::start(1 << 20);
    let mut journal = Vec::with_capacity(ops.len());
    // Version-chain mode: a shadow model per live snapshot, verified and
    // released during the run (at most two live at once, so the chain gets
    // both the freeze-under-one-snapshot and the multi-window prune paths).
    let mut shadow: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut live_snaps: Vec<(u64, std::collections::BTreeMap<u64, u64>)> = Vec::new();
    let verify_release = |idx: &dyn crate::adapter::CheckableIndex,
                          snap: u64,
                          model: &std::collections::BTreeMap<u64, u64>| {
        let got = idx
            .scan_at_all(snap, usize::MAX >> 1)
            .expect("snapshot vanished while live");
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(
            got, want,
            "snapshot-isolation violation: snapshot {snap} diverged from its shadow model"
        );
        assert!(
            idx.release_snapshot(snap),
            "release of live snapshot {snap}"
        );
    };
    let mut run = || -> Result<()> {
        for (i, op) in ops.iter().enumerate() {
            if spec.snapshot_every != 0 && i % spec.snapshot_every == 0 {
                if let Some(snap) = idx.snapshot() {
                    live_snaps.push((snap, shadow.clone()));
                    if live_snaps.len() > 2 {
                        let (old, model) = live_snaps.remove(0);
                        verify_release(idx.as_ref(), old, &model);
                    }
                }
            }
            let start_seq = trace::current_seq();
            match *op {
                Op::Insert { key, value } => {
                    idx.insert(key, value)?;
                    shadow.insert(key, value);
                }
                Op::Remove { key } => {
                    idx.remove(key)?;
                    shadow.remove(&key);
                }
            }
            journal.push(JournalEntry {
                op: *op,
                start_seq,
                end_seq: trace::current_seq(),
            });
        }
        Ok(())
    };
    let res = run();
    // Verify and release the stragglers before quiescing so the final
    // fence sees a tree with no pinned epochs.
    for (snap, model) in live_snaps.drain(..) {
        verify_release(idx.as_ref(), snap, &model);
    }
    idx.quiesce();
    drop(idx);
    persist::fence();
    let trace = trace::stop();
    res?;

    let snapshots = pools
        .iter()
        .map(|p| p.media_snapshot().expect("checker pools are crash_sim"))
        .collect();
    Ok(RunArtifacts {
        pools,
        journal,
        trace,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_generation_is_deterministic() {
        let spec = WorkloadSpec::default_for(7);
        let a = gen_ops(&spec);
        let b = gen_ops(&spec);
        assert_eq!(a, b);
        assert!(a.iter().any(|o| matches!(o, Op::Remove { .. })));
        assert!(a.iter().all(|o| {
            let k = o.key();
            k >= 1 && k <= spec.keyspace
        }));
    }
}
