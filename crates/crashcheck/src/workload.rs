//! Deterministic single-threaded workloads and traced execution.
//!
//! The checker's power comes from replaying one execution many ways, so the
//! execution itself must be reproducible: one thread, seeded ops, no
//! background SMO replay (the adapters create indexes with synchronous
//! SMOs). Given the same seed the op sequence, the trace sequence numbers
//! and the media images are all bit-identical — which is what makes replay
//! files work.

use std::sync::Arc;

use pmem::pool::PmemPool;
use pmem::{persist, trace, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adapter::IndexKind;
use crate::journal::{JournalEntry, Op};

/// Everything that defines one traced execution. Serialized into replay
/// files; two runs with equal specs produce equal traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Seed for the op generator.
    pub seed: u64,
    /// Keys are drawn from `1..=keyspace`.
    pub keyspace: u64,
    /// Number of operations.
    pub ops: usize,
    /// Size of every backing pool.
    pub pool_size: usize,
}

impl WorkloadSpec {
    /// Small, dense default: enough overwrites and removes to exercise
    /// multi-step protocols, small enough that one execution traces and
    /// snapshots in well under a millisecond-scale budget slice.
    pub fn default_for(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            keyspace: 48,
            ops: 160,
            pool_size: 2 << 20,
        }
    }
}

/// Generates the deterministic op sequence for a spec.
///
/// Values are even and unique per op index (`(i + 1) * 2`), so every torn
/// or phantom value is attributable to a specific op, and the encodings of
/// all five indexes accept them (no `u64::MAX`, no low tag bits, < 2^62).
pub fn gen_ops(spec: &WorkloadSpec) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.ops)
        .map(|i| {
            let key = rng.gen_range(1..=spec.keyspace);
            if rng.gen_range(0u32..10) < 7 {
                Op::Insert {
                    key,
                    value: (i as u64 + 1) * 2,
                }
            } else {
                Op::Remove { key }
            }
        })
        .collect()
}

/// The artifacts of one traced execution.
pub struct RunArtifacts {
    /// The pools backing the (now dropped) index, in adapter order.
    pub pools: Vec<Arc<PmemPool>>,
    /// Acknowledged ops with their trace-sequence brackets.
    pub journal: Vec<JournalEntry>,
    /// The merged event trace.
    pub trace: trace::Trace,
    /// Final media image of each pool (same order as `pools`), taken after
    /// the closing fence — i.e. the fully durable end state.
    pub snapshots: Vec<Vec<u8>>,
}

/// Creates the index, runs the spec's ops under tracing, quiesces, and
/// returns the artifacts. The caller must hold [`trace::session`].
///
/// Index creation runs *before* tracing starts: the setup prologue is fully
/// fenced, so it is durable at every enumerated crash point and the oracle
/// never blames it.
pub fn run_traced(kind: IndexKind, name: &str, spec: &WorkloadSpec) -> Result<RunArtifacts> {
    let ops = gen_ops(spec);
    let idx = kind.create(name, spec.pool_size)?;
    let pools = idx.pools();
    persist::fence();

    trace::start(1 << 20);
    let mut journal = Vec::with_capacity(ops.len());
    let mut run = || -> Result<()> {
        for op in &ops {
            let start_seq = trace::current_seq();
            match *op {
                Op::Insert { key, value } => {
                    idx.insert(key, value)?;
                }
                Op::Remove { key } => {
                    idx.remove(key)?;
                }
            }
            journal.push(JournalEntry {
                op: *op,
                start_seq,
                end_seq: trace::current_seq(),
            });
        }
        Ok(())
    };
    let res = run();
    idx.quiesce();
    drop(idx);
    persist::fence();
    let trace = trace::stop();
    res?;

    let snapshots = pools
        .iter()
        .map(|p| p.media_snapshot().expect("checker pools are crash_sim"))
        .collect();
    Ok(RunArtifacts {
        pools,
        journal,
        trace,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_generation_is_deterministic() {
        let spec = WorkloadSpec::default_for(7);
        let a = gen_ops(&spec);
        let b = gen_ops(&spec);
        assert_eq!(a, b);
        assert!(a.iter().any(|o| matches!(o, Op::Remove { .. })));
        assert!(a.iter().all(|o| {
            let k = o.key();
            k >= 1 && k <= spec.keyspace
        }));
    }
}
