//! Journal of acknowledged operations and the durable-linearizability
//! expectation it induces at a crash point.
//!
//! Every workload operation is bracketed with the trace sequence counter:
//! `start_seq` is read just before the call, `end_seq` just after it
//! returns (= is acknowledged). Relative to a crash whose durable prefix is
//! the fence with sequence number `fence_seq`:
//!
//! * **acked** (`end_seq <= fence_seq`): every flush and fence of the op is
//!   inside the durable prefix, so its effect MUST survive recovery.
//! * **in-flight** (everything else): the op's effect may be fully present,
//!   fully absent, or — for the buggy index the checker exists to catch —
//!   *torn*. The oracle allows old-or-new and flags anything else.
//!
//! This classification is deliberately conservative: an op that was acked
//! *inside* the crash window is treated as in-flight even though some crash
//! points within the window lie after its ack. A checker must never report
//! a false positive, and the fully-flushed state of each window (always
//! enumerated) still exercises the acked-exactly-at-crash case one window
//! later.

use std::collections::BTreeMap;

/// One workload operation over `u64` keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Upsert `key -> value`.
    Insert { key: u64, value: u64 },
    /// Delete `key`.
    Remove { key: u64 },
}

impl Op {
    /// The key the op touches.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Insert { key, .. } | Op::Remove { key } => key,
        }
    }

    /// The key's value after the op (`None` = absent).
    pub fn effect(&self) -> Option<u64> {
        match *self {
            Op::Insert { value, .. } => Some(value),
            Op::Remove { .. } => None,
        }
    }
}

/// One acknowledged operation with its trace-sequence bracket.
#[derive(Clone, Copy, Debug)]
pub struct JournalEntry {
    pub op: Op,
    /// `pmem::trace::current_seq()` immediately before the call.
    pub start_seq: u64,
    /// `pmem::trace::current_seq()` immediately after the call returned.
    pub end_seq: u64,
}

/// What recovery must (and may) observe for each key at one crash point.
#[derive(Debug, Default)]
pub struct Expectation {
    /// Key state after applying exactly the acked prefix.
    pub strict: BTreeMap<u64, Option<u64>>,
    /// Per key, every admissible post-recovery state: the strict state plus
    /// the effect of each in-flight op on that key.
    pub allowed: BTreeMap<u64, Vec<Option<u64>>>,
}

impl Expectation {
    /// Builds the expectation for a crash whose durable prefix is
    /// `fence_seq`.
    pub fn at(journal: &[JournalEntry], fence_seq: u64) -> Expectation {
        let mut e = Expectation::default();
        for entry in journal {
            let key = entry.op.key();
            if entry.end_seq <= fence_seq {
                e.strict.insert(key, entry.op.effect());
            }
        }
        for entry in journal {
            let key = entry.op.key();
            let strict = e.strict.get(&key).copied().unwrap_or(None);
            let opts = e.allowed.entry(key).or_insert_with(|| vec![strict]);
            if entry.end_seq > fence_seq {
                let eff = entry.op.effect();
                if !opts.contains(&eff) {
                    opts.push(eff);
                }
            }
        }
        e
    }

    /// Whether `value` (`None` = absent) is admissible for `key`.
    pub fn admits(&self, key: u64, value: Option<u64>) -> bool {
        match self.allowed.get(&key) {
            Some(opts) => opts.contains(&value),
            // A key no journalled op ever touched must be absent.
            None => value.is_none(),
        }
    }

    /// Keys whose post-crash state is uniquely determined (single admissible
    /// value): recovery must reproduce it exactly.
    pub fn determined(&self) -> impl Iterator<Item = (u64, Option<u64>)> + '_ {
        self.allowed
            .iter()
            .filter(|(_, opts)| opts.len() == 1)
            .map(|(&k, opts)| (k, opts[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: Op, start_seq: u64, end_seq: u64) -> JournalEntry {
        JournalEntry {
            op,
            start_seq,
            end_seq,
        }
    }

    #[test]
    fn acked_strict_inflight_relaxed() {
        let j = vec![
            entry(Op::Insert { key: 1, value: 10 }, 0, 5),
            entry(Op::Insert { key: 2, value: 20 }, 5, 9),
            entry(Op::Insert { key: 1, value: 11 }, 9, 14),
            entry(Op::Remove { key: 2 }, 14, 20),
        ];
        let e = Expectation::at(&j, 10);
        // key 1: acked value 10; in-flight overwrite 11.
        assert!(e.admits(1, Some(10)));
        assert!(e.admits(1, Some(11)));
        assert!(!e.admits(1, None), "acked insert must not vanish");
        assert!(!e.admits(1, Some(99)), "torn value");
        // key 2: acked value 20; in-flight remove.
        assert!(e.admits(2, Some(20)));
        assert!(e.admits(2, None));
        // untouched keys must be absent.
        assert!(e.admits(3, None));
        assert!(!e.admits(3, Some(1)));
        // only key 1 pre-overwrite is undetermined; nothing is singleton
        // except... key 1 has {10, 11}, key 2 has {20, None}: none determined.
        assert_eq!(e.determined().count(), 0);
        // At a later fence everything is acked and determined.
        let e = Expectation::at(&j, 20);
        let det: BTreeMap<_, _> = e.determined().collect();
        assert_eq!(det.get(&1), Some(&Some(11)));
        assert_eq!(det.get(&2), Some(&None));
    }
}
