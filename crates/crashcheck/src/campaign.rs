//! Seeded, time-budgeted checking campaigns and deterministic replay.
//!
//! A campaign repeats *episodes* until the budget or the state target is
//! hit. Each episode runs one traced workload (fresh pools, fresh seed),
//! then walks its crash windows newest-first: small windows are enumerated
//! exhaustively, large ones sampled with a seeded RNG. Every crash state is
//! materialized into the live pools with
//! [`load_crash_image`](pmem::pool::PmemPool::load_crash_image), recovered
//! through the index's own recovery path, and checked by the oracle.
//! Failing states are shrunk toward fully flushed and serialized as replay
//! files; a one-line JSON summary lands in the results directory.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pmem::trace;

use crate::adapter::{destroy_pools, IndexKind};
use crate::enumerate::{sampler, Rewinder, Window};
use crate::journal::Expectation;
use crate::oracle::{self, Violation};
use crate::shrink::{shrink, Replay};
use crate::workload::{run_traced, RunArtifacts, WorkloadSpec};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignOpts {
    /// Index under test.
    pub kind: IndexKind,
    /// Base seed; episode `e` runs workload seed `seed + e`.
    pub seed: u64,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Stop once this many crash states were checked (0 = budget only).
    pub target_states: u64,
    /// Keys per workload.
    pub keyspace: u64,
    /// Ops per workload.
    pub ops: usize,
    /// Size of every backing pool.
    pub pool_size: usize,
    /// MVCC snapshot cadence in ops (0 = never); see
    /// [`WorkloadSpec::snapshot_every`].
    pub snapshot_every: usize,
    /// Windows with at most this many states are enumerated exhaustively.
    pub max_exhaustive: u128,
    /// Samples drawn from windows above the exhaustive cap.
    pub samples_per_window: u64,
    /// Stop after this many violations (each costs shrinking time).
    pub max_violations: usize,
    /// Where replay files and the JSON summary go (`None` = don't write).
    pub out_dir: Option<PathBuf>,
}

impl CampaignOpts {
    /// Defaults tuned so a CI smoke run clears >10k states in seconds.
    pub fn new(kind: IndexKind, seed: u64) -> CampaignOpts {
        let spec = WorkloadSpec::default_for(seed);
        CampaignOpts {
            kind,
            seed,
            budget: Duration::from_secs(30),
            target_states: 0,
            keyspace: spec.keyspace,
            ops: spec.ops,
            pool_size: spec.pool_size,
            snapshot_every: 0,
            max_exhaustive: 64,
            samples_per_window: 24,
            max_violations: 3,
            out_dir: None,
        }
    }

    fn spec(&self, episode: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed: self.seed.wrapping_add(episode),
            keyspace: self.keyspace,
            ops: self.ops,
            pool_size: self.pool_size,
            snapshot_every: self.snapshot_every,
        }
    }
}

/// One found-and-shrunk violation.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// The shrunk failing state.
    pub replay: Replay,
    /// Where the replay file was written, if an output directory was set.
    pub path: Option<PathBuf>,
}

/// Campaign outcome.
#[derive(Debug, Default)]
pub struct CampaignSummary {
    pub index: String,
    pub seed: u64,
    /// Crash states materialized, recovered and checked.
    pub states: u64,
    /// Crash points (fence windows) visited.
    pub windows: u64,
    /// Traced workload executions.
    pub episodes: u64,
    pub violations: Vec<ViolationReport>,
    pub elapsed_ms: u64,
    /// Where the JSON summary was written, if anywhere.
    pub summary_path: Option<PathBuf>,
}

impl CampaignSummary {
    /// One-line JSON for dashboards and CI logs.
    pub fn to_json(&self) -> String {
        let replays: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "\"{}\"",
                    v.path
                        .as_deref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| v.replay.violation.clone())
                        .replace('\\', "/")
                        .replace('"', "'")
                )
            })
            .collect();
        format!(
            "{{\"tool\":\"crashcheck\",\"index\":\"{}\",\"seed\":{},\"states\":{},\"crash_points\":{},\"episodes\":{},\"violations\":{},\"replays\":[{}],\"elapsed_ms\":{}}}",
            self.index,
            self.seed,
            self.states,
            self.windows,
            self.episodes,
            self.violations.len(),
            replays.join(","),
            self.elapsed_ms
        )
    }
}

/// Everything that stays fixed while testing the states of one window.
struct StateCtx<'a> {
    art: &'a RunArtifacts,
    expect: &'a Expectation,
    kind: IndexKind,
    name: &'a str,
    pool_size: usize,
}

/// Materializes one crash state, recovers, and runs the oracle.
/// Returns the violation if the state is bad.
fn test_state(
    rew: &mut Rewinder,
    window: &Window,
    choices: &[u32],
    ctx: &StateCtx,
) -> Option<Violation> {
    rew.with_state(window, choices, |images| {
        for (pool, image) in ctx.art.pools.iter().zip(images) {
            pool.load_crash_image(image);
        }
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let idx = match ctx.kind.recover(ctx.name, ctx.pool_size) {
                Ok(idx) => idx,
                Err(e) => {
                    return Some(Violation {
                        kind: "recovery-error",
                        detail: format!("recovery failed: {e:?}"),
                    })
                }
            };
            oracle::check(idx.as_ref(), ctx.expect).err()
        }));
        match outcome {
            Ok(v) => v,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Some(Violation {
                    kind: "recovery-panic",
                    detail: msg,
                })
            }
        }
    })
}

/// Runs a full campaign.
pub fn run_campaign(opts: &CampaignOpts) -> Result<CampaignSummary, String> {
    let _session = trace::session();
    let started = Instant::now();
    let mut summary = CampaignSummary {
        index: opts.kind.name().to_string(),
        seed: opts.seed,
        ..CampaignSummary::default()
    };
    let deadline = started + opts.budget;
    let done = |s: &CampaignSummary| {
        Instant::now() >= deadline
            || (opts.target_states != 0 && s.states >= opts.target_states)
            || s.violations.len() >= opts.max_violations
    };

    let mut episode = 0u64;
    while !done(&summary) {
        let spec = opts.spec(episode);
        let name = format!("cc-{}-{}-{}", opts.kind.name(), opts.seed, episode);
        let art = run_traced(opts.kind, &name, &spec).map_err(|e| format!("workload: {e:?}"))?;
        summary.episodes += 1;
        let pool_ids: Vec<_> = art.pools.iter().map(|p| p.id()).collect();
        let mut rew = Rewinder::new(&art.trace, &pool_ids, art.snapshots.clone());
        let mut rng = sampler(spec.seed ^ 0x9e37_79b9_7f4a_7c15);

        while let Some(window) = rew.next_window() {
            if done(&summary) {
                break;
            }
            summary.windows += 1;
            let expect = Expectation::at(&art.journal, window.fence_seq);
            let ctx = StateCtx {
                art: &art,
                expect: &expect,
                kind: opts.kind,
                name: &name,
                pool_size: spec.pool_size,
            };
            let run_one =
                |rew: &mut Rewinder, choices: &[u32], summary: &mut CampaignSummary| -> bool {
                    summary.states += 1;
                    let Some(v) = test_state(rew, &window, choices, &ctx) else {
                        return false;
                    };
                    // Shrink toward fully flushed; any violation counts as
                    // still-failing (shrinking may shift the failure mode).
                    let shrunk = shrink(&window, choices, |c| {
                        test_state(rew, &window, c, &ctx).is_some()
                    });
                    let final_v = test_state(rew, &window, &shrunk, &ctx).unwrap_or(v);
                    let replay = Replay {
                        index: opts.kind.name().to_string(),
                        spec,
                        fence_seq: window.fence_seq,
                        stale: Replay::stale_from_choices(&window, &shrunk),
                        violation: final_v.to_string(),
                    };
                    let path = opts.out_dir.as_deref().and_then(|dir| {
                        let path = dir.join(format!(
                            "replay-{}-{}-{}.txt",
                            opts.kind.name(),
                            opts.seed,
                            summary.violations.len()
                        ));
                        std::fs::create_dir_all(dir).ok()?;
                        std::fs::write(&path, replay.serialize()).ok()?;
                        Some(path)
                    });
                    summary.violations.push(ViolationReport { replay, path });
                    true
                };

            if window.state_count() <= opts.max_exhaustive {
                let mut choices = vec![0u32; window.lines.len()];
                loop {
                    if done(&summary) {
                        break;
                    }
                    if run_one(&mut rew, &choices, &mut summary) {
                        break; // one shrunk violation per window is enough
                    }
                    if !window.next_choices(&mut choices) {
                        break;
                    }
                }
            } else {
                // Always include the fully flushed baseline, then sample.
                let mut drawn = vec![window.last_choices()];
                for _ in 0..opts.samples_per_window {
                    drawn.push(window.sample_choices(&mut rng));
                }
                for choices in drawn {
                    if done(&summary) {
                        break;
                    }
                    if run_one(&mut rew, &choices, &mut summary) {
                        break;
                    }
                }
            }
        }
        destroy_pools(&art.pools);
        episode += 1;
    }

    summary.elapsed_ms = started.elapsed().as_millis() as u64;
    if let Some(dir) = opts.out_dir.as_deref() {
        summary.summary_path = write_summary(dir, &summary);
    }
    Ok(summary)
}

fn write_summary(dir: &Path, summary: &CampaignSummary) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!(
        "crashcheck-{}-{}.json",
        summary.index, summary.seed
    ));
    std::fs::write(&path, summary.to_json() + "\n").ok()?;
    Some(path)
}

/// Re-executes a replay file: re-runs the traced workload deterministically,
/// seeks the recorded crash window, materializes the recorded state, and
/// returns the violation it reproduces (`None` = no longer failing).
pub fn run_replay(replay: &Replay) -> Result<Option<Violation>, String> {
    let kind = IndexKind::parse(&replay.index)
        .ok_or_else(|| format!("unknown index: {}", replay.index))?;
    let _session = trace::session();
    let name = format!("cc-replay-{}-{}", replay.index, replay.spec.seed);
    let art = run_traced(kind, &name, &replay.spec).map_err(|e| format!("workload: {e:?}"))?;
    let pool_ids: Vec<_> = art.pools.iter().map(|p| p.id()).collect();
    let mut rew = Rewinder::new(&art.trace, &pool_ids, art.snapshots.clone());

    let mut result = Err(format!(
        "crash window with fence_seq {} not found; the execution is not \
         reproducing deterministically",
        replay.fence_seq
    ));
    while let Some(window) = rew.next_window() {
        if window.fence_seq != replay.fence_seq {
            continue;
        }
        let expect = Expectation::at(&art.journal, window.fence_seq);
        let ctx = StateCtx {
            art: &art,
            expect: &expect,
            kind,
            name: &name,
            pool_size: replay.spec.pool_size,
        };
        result = replay
            .choices_for(&window)
            .map(|choices| test_state(&mut rew, &window, &choices, &ctx));
        break;
    }
    destroy_pools(&art.pools);
    result
}
