//! Criterion smoke versions of the figure experiments: tiny scales, so
//! `cargo bench` exercises every figure pipeline end-to-end. The real
//! figures come from the `src/bin/fig*` binaries (see EXPERIMENTS.md).

use bench::{AnyIndex, Kind, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, Distribution, DriverConfig, KeySpace, Mix, Workload};

fn run_mix(idx: &AnyIndex, mix: Mix, keys: u64, threads: usize) -> f64 {
    let w = Workload::new(mix, Distribution::Zipfian(0.99), keys);
    let cfg = DriverConfig {
        threads,
        ops: 2_000,
        dilation: 1.0,
        ..Default::default()
    };
    driver::run_workload(idx, &w, KeySpace::Integer, &cfg).mops
}

fn figure_smokes(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Figure 9/10 pipeline: every index through every mix.
    for kind in Kind::all() {
        let idx = AnyIndex::create(
            kind,
            &format!("figbench-{}", kind.name()),
            KeySpace::Integer,
            &scale,
        );
        driver::populate(&idx, KeySpace::Integer, scale.keys, 2);
        group.bench_function(format!("ycsb-a/{}", kind.name()), |b| {
            b.iter(|| run_mix(&idx, Mix::A, scale.keys, 2))
        });
        idx.destroy();
    }

    // Figure 2 pipeline: coherence modes with the accounting model.
    group.bench_function("coherence-directory", |b| {
        let idx = AnyIndex::create(Kind::FastFair, "figbench-coh", KeySpace::Integer, &scale);
        driver::populate(&idx, KeySpace::Integer, scale.keys, 2);
        let mut cfg = NvmModelConfig::accounting();
        cfg.coherence = CoherenceMode::Directory;
        model::set_config(cfg);
        b.iter(|| run_mix(&idx, Mix::A, scale.keys, 2));
        model::set_config(NvmModelConfig::disabled());
        idx.destroy();
    });

    group.finish();
}

criterion_group!(benches, figure_smokes);
criterion_main!(benches);
