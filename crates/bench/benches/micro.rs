//! Criterion micro-benchmarks: single-operation costs per index
//! (lookup / insert / scan), model disabled — raw implementation overhead.

use bench::{AnyIndex, Kind, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ycsb::{KeySpace, RangeIndex};

fn op_benches(c: &mut Criterion) {
    let scale = Scale::tiny();
    let space = KeySpace::Integer;
    let mut group = c.benchmark_group("micro");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for kind in Kind::all() {
        let idx = AnyIndex::create(kind, &format!("micro-{}", kind.name()), space, &scale);
        for i in 0..scale.keys {
            idx.insert(&space.encode(i), i);
        }
        let mut next = scale.keys;

        group.bench_function(BenchmarkId::new("lookup", kind.name()), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % scale.keys;
                std::hint::black_box(idx.lookup(&space.encode(i)))
            })
        });
        group.bench_function(BenchmarkId::new("insert", kind.name()), |b| {
            b.iter(|| {
                // Wrap within a bounded key space so long criterion runs
                // cannot exhaust the pool (wrapped inserts become updates).
                next = scale.keys + (next + 1) % 200_000;
                idx.insert(&space.encode(next), next)
            })
        });
        group.bench_function(BenchmarkId::new("scan100", kind.name()), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % scale.keys;
                std::hint::black_box(RangeIndex::scan(&idx, &space.encode(i), 100))
            })
        });
        idx.destroy();
    }
    group.finish();
}

criterion_group!(benches, op_benches);
criterion_main!(benches);
