//! Shared harness for the figure-reproduction binaries.
//!
//! Every figure/table of the paper's evaluation (§6) has a binary in
//! `src/bin/` that prints the same rows/series the paper plots. Because the
//! original experiments ran on a 2-socket, 112-thread Optane machine with
//! 64M-key workloads and ours run in an emulated environment, the harness:
//!
//! * scales workload sizes via environment variables (`PAC_KEYS`,
//!   `PAC_OPS`, `PAC_THREADS`, `PAC_DILATION`, `PAC_POOL_MB`);
//! * drives the NVM performance model time-dilated
//!   ([`pmem::model::NvmModelConfig::optane_dilated`]) so that concurrent
//!   threads genuinely overlap their modeled NVM stalls even on a small
//!   host — that is what makes thread-sweep scalability *shapes*
//!   reproducible;
//! * reports dilation-corrected throughput (model-time Mops/s).
//!
//! Absolute numbers are not comparable with the paper's hardware; the
//! relative ordering and curve shapes are the reproduction target (see
//! EXPERIMENTS.md).

use std::sync::Arc;

use baselines::bztree::BzTree;
use baselines::fastfair::{FastFair, KeyMode};
use baselines::fptree::FpTree;
use pactree::{PacTree, PacTreeConfig};
use pdl_art::{PdlArt, PdlArtConfig};
use ycsb::{KeySpace, RangeIndex};

/// Workload scale, read from the environment with laptop-friendly defaults.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Keys loaded before the measured phase (paper: 64M).
    pub keys: u64,
    /// Measured operations (paper: 64M).
    pub ops: u64,
    /// Thread counts for sweep figures (paper: up to 112).
    pub threads: Vec<usize>,
    /// Time-dilation factor for the NVM model.
    pub dilation: f64,
    /// Pool size per pool.
    pub pool_size: usize,
}

fn env_u64(name: &str, default: u64) -> Result<u64, String> {
    match std::env::var(name) {
        Err(_) => Ok(default),
        Ok(v) => v.trim().parse().map_err(|_| {
            format!("{name}={v:?} is not an unsigned integer (try e.g. {name}={default})")
        }),
    }
}

/// Rejects a value outside `[lo, hi]` with an actionable message.
fn check_range(name: &str, value: u64, lo: u64, hi: u64) -> Result<(), String> {
    if value < lo || value > hi {
        return Err(format!(
            "{name}={value} is out of range: expected {lo}..={hi}"
        ));
    }
    Ok(())
}

impl Scale {
    /// Reads `PAC_KEYS`, `PAC_OPS`, `PAC_THREADS` (max of the sweep),
    /// `PAC_DILATION`, `PAC_POOL_MB` from the environment. Exits with a
    /// clear diagnostic on unparseable or absurd values — a silent default
    /// would make a figure run lie about its configuration.
    pub fn from_env() -> Scale {
        match Scale::try_from_env() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("invalid workload configuration: {e}");
                std::process::exit(2);
            }
        }
    }

    /// [`from_env`](Self::from_env) with the error surfaced to the caller.
    pub fn try_from_env() -> Result<Scale, String> {
        let keys = env_u64("PAC_KEYS", 100_000)?;
        let ops = env_u64("PAC_OPS", 30_000)?;
        let max_threads = env_u64("PAC_THREADS", 16)?;
        let dilation = env_u64("PAC_DILATION", 192)?;
        let pool_mb = env_u64("PAC_POOL_MB", (keys / 256).clamp(256, 4096))?;
        check_range("PAC_KEYS", keys, 1, 1 << 30)?;
        check_range("PAC_OPS", ops, 1, 1 << 34)?;
        check_range("PAC_THREADS", max_threads, 1, 4096)?;
        check_range("PAC_DILATION", dilation, 1, 1_000_000)?;
        check_range("PAC_POOL_MB", pool_mb, 16, 1 << 20)?;
        let mut threads = vec![1, 2, 4, 8, 16, 28, 56, 112];
        threads.retain(|&t| t <= max_threads as usize);
        if threads.is_empty() {
            threads.push(max_threads as usize);
        }
        Ok(Scale {
            keys,
            ops,
            threads,
            dilation: dilation as f64,
            pool_size: (pool_mb as usize) << 20,
        })
    }

    /// A tiny scale for criterion smoke benches.
    pub fn tiny() -> Scale {
        Scale {
            keys: 5_000,
            ops: 2_000,
            threads: vec![2],
            dilation: 1.0,
            pool_size: 128 << 20,
        }
    }

    /// Max thread count of the sweep.
    pub fn max_threads(&self) -> usize {
        *self.threads.last().unwrap_or(&1)
    }
}

/// The indexes compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    PacTree,
    PdlArt,
    BzTree,
    FastFair,
    FpTree,
}

impl Kind {
    /// Every index (Figure 10's integer-key lineup).
    pub fn all() -> [Kind; 5] {
        [
            Kind::PacTree,
            Kind::PdlArt,
            Kind::BzTree,
            Kind::FastFair,
            Kind::FpTree,
        ]
    }

    /// The string-key lineup (Figure 9: FPTree's binary has no
    /// variable-length keys).
    pub fn string_capable() -> [Kind; 4] {
        [Kind::PacTree, Kind::PdlArt, Kind::BzTree, Kind::FastFair]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kind::PacTree => "PACTree",
            Kind::PdlArt => "PDL-ART",
            Kind::BzTree => "BzTree",
            Kind::FastFair => "FastFair",
            Kind::FpTree => "FPTree",
        }
    }
}

/// A uniform handle over every index type (cloneable for the driver).
#[derive(Clone)]
pub enum AnyIndex {
    Pac(Arc<PacTree>),
    Pdl(Arc<PdlArt>),
    Bz(Arc<BzTree>),
    Ff(Arc<FastFair>),
    Fp(Arc<FpTree>),
}

impl AnyIndex {
    /// Creates an index of `kind` named `name`.
    pub fn create(kind: Kind, name: &str, space: KeySpace, scale: &Scale) -> AnyIndex {
        let sz = scale.pool_size;
        match kind {
            Kind::PacTree => AnyIndex::Pac(
                PacTree::create(
                    PacTreeConfig::named(name)
                        .with_pool_size(sz)
                        .with_numa_pools(pmem::numa::nodes()),
                )
                .expect("create pactree"),
            ),
            Kind::PdlArt => AnyIndex::Pdl(
                PdlArt::create(PdlArtConfig::named(name).with_pool_size(sz))
                    .expect("create pdl-art"),
            ),
            Kind::BzTree => {
                AnyIndex::Bz(BzTree::create(name, sz, key_mode(space)).expect("create bztree"))
            }
            Kind::FastFair => {
                AnyIndex::Ff(FastFair::create(name, sz, key_mode(space)).expect("create fastfair"))
            }
            Kind::FpTree => AnyIndex::Fp(FpTree::create(name, sz).expect("create fptree")),
        }
    }

    /// Destroys the index and unregisters its pools.
    pub fn destroy(self) {
        match self {
            AnyIndex::Pac(t) => t.destroy(),
            AnyIndex::Pdl(t) => t.destroy(),
            AnyIndex::Bz(t) => t.destroy(),
            AnyIndex::Ff(t) => t.destroy(),
            AnyIndex::Fp(t) => t.destroy(),
        }
    }

    /// The PACTree handle, when this is one (factor analysis, skew,
    /// jump-distance experiments).
    pub fn as_pactree(&self) -> Option<&Arc<PacTree>> {
        match self {
            AnyIndex::Pac(t) => Some(t),
            _ => None,
        }
    }

    /// The FPTree handle, when this is one (HTM statistics).
    pub fn as_fptree(&self) -> Option<&Arc<FpTree>> {
        match self {
            AnyIndex::Fp(t) => Some(t),
            _ => None,
        }
    }
}

fn key_mode(space: KeySpace) -> KeyMode {
    match space {
        KeySpace::Integer => KeyMode::Integer,
        KeySpace::String => KeyMode::String,
    }
}

impl RangeIndex for AnyIndex {
    fn name(&self) -> &'static str {
        match self {
            AnyIndex::Pac(t) => t.name(),
            AnyIndex::Pdl(t) => t.name(),
            AnyIndex::Bz(t) => t.name(),
            AnyIndex::Ff(t) => t.name(),
            AnyIndex::Fp(t) => t.name(),
        }
    }

    fn insert(&self, key: &[u8], value: u64) {
        match self {
            AnyIndex::Pac(t) => t.insert(key, value),
            AnyIndex::Pdl(t) => t.insert(key, value),
            AnyIndex::Bz(t) => t.insert(key, value),
            AnyIndex::Ff(t) => t.insert(key, value),
            AnyIndex::Fp(t) => t.insert(key, value),
        }
    }

    fn update(&self, key: &[u8], value: u64) {
        match self {
            AnyIndex::Pac(t) => t.update(key, value),
            other => other.insert(key, value),
        }
    }

    fn lookup(&self, key: &[u8]) -> Option<u64> {
        match self {
            AnyIndex::Pac(t) => t.lookup(key),
            AnyIndex::Pdl(t) => t.lookup(key),
            AnyIndex::Bz(t) => t.lookup(key),
            AnyIndex::Ff(t) => t.lookup(key),
            AnyIndex::Fp(t) => t.lookup(key),
        }
    }

    fn remove(&self, key: &[u8]) -> Option<u64> {
        match self {
            AnyIndex::Pac(t) => RangeIndex::remove(t, key),
            AnyIndex::Pdl(t) => RangeIndex::remove(t, key),
            AnyIndex::Bz(t) => RangeIndex::remove(t, key),
            AnyIndex::Ff(t) => RangeIndex::remove(t, key),
            AnyIndex::Fp(t) => RangeIndex::remove(t, key),
        }
    }

    fn scan(&self, start: &[u8], count: usize) -> usize {
        match self {
            AnyIndex::Pac(t) => RangeIndex::scan(t, start, count),
            AnyIndex::Pdl(t) => RangeIndex::scan(t, start, count),
            AnyIndex::Bz(t) => RangeIndex::scan(t, start, count),
            AnyIndex::Ff(t) => RangeIndex::scan(t, start, count),
            AnyIndex::Fp(t) => RangeIndex::scan(t, start, count),
        }
    }

    fn supports_strings(&self) -> bool {
        !matches!(self, AnyIndex::Fp(_))
    }

    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        match self {
            AnyIndex::Pac(t) => RangeIndex::op_histograms(t),
            AnyIndex::Pdl(t) => RangeIndex::op_histograms(t),
            AnyIndex::Bz(t) => RangeIndex::op_histograms(t),
            AnyIndex::Ff(t) => RangeIndex::op_histograms(t),
            AnyIndex::Fp(t) => RangeIndex::op_histograms(t),
        }
    }

    fn with_batch(&self, f: &mut dyn FnMut()) {
        match self {
            AnyIndex::Pac(t) => RangeIndex::with_batch(t, f),
            AnyIndex::Pdl(t) => RangeIndex::with_batch(t, f),
            AnyIndex::Bz(t) => RangeIndex::with_batch(t, f),
            AnyIndex::Ff(t) => RangeIndex::with_batch(t, f),
            AnyIndex::Fp(t) => RangeIndex::with_batch(t, f),
        }
    }

    fn drain(&self, timeout: std::time::Duration) -> bool {
        match self {
            AnyIndex::Pac(t) => RangeIndex::drain(t, timeout),
            AnyIndex::Pdl(t) => RangeIndex::drain(t, timeout),
            AnyIndex::Bz(t) => RangeIndex::drain(t, timeout),
            AnyIndex::Ff(t) => RangeIndex::drain(t, timeout),
            AnyIndex::Fp(t) => RangeIndex::drain(t, timeout),
        }
    }

    // MVCC: only PACTree is versioned; everything else keeps the trait's
    // unsupported defaults.

    fn snapshot(&self) -> Option<u64> {
        match self {
            AnyIndex::Pac(t) => RangeIndex::snapshot(t),
            _ => None,
        }
    }

    fn scan_at(&self, snap: u64, start: &[u8], count: usize) -> Option<usize> {
        match self {
            AnyIndex::Pac(t) => RangeIndex::scan_at(t, snap, start, count),
            _ => None,
        }
    }

    fn release_snapshot(&self, snap: u64) -> bool {
        match self {
            AnyIndex::Pac(t) => RangeIndex::release_snapshot(t, snap),
            _ => false,
        }
    }

    fn advance_version(&self) {
        if let AnyIndex::Pac(t) = self {
            RangeIndex::advance_version(t);
        }
    }

    fn scan_pairs_at(&self, snap: u64, start: &[u8], count: usize) -> Option<Vec<(Vec<u8>, u64)>> {
        match self {
            AnyIndex::Pac(t) => RangeIndex::scan_pairs_at(t, snap, start, count),
            _ => None,
        }
    }

    fn diff_pairs(&self, a: u64, b: u64) -> Option<Vec<ycsb::index::DiffPair>> {
        match self {
            AnyIndex::Pac(t) => RangeIndex::diff_pairs(t, a, b),
            _ => None,
        }
    }
}

/// The current git commit (short hash, `-dirty` suffixed when the tree has
/// local modifications), or `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    let out = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(hash) = out(&["rev-parse", "--short=12", "HEAD"]) else {
        return "unknown".to_string();
    };
    let dirty = out(&["status", "--porcelain"]).is_none_or(|s| !s.trim().is_empty());
    format!("{}{}", hash.trim(), if dirty { "-dirty" } else { "" })
}

/// Provenance stamp embedded in every result-JSON artifact: the git commit
/// the binary ran from plus the effective workload configuration, so a
/// results file is attributable without its shell history.
pub fn stamp_json(scale: &Scale) -> String {
    format!(
        "{{\"git_commit\":\"{}\",\"keys\":{},\"ops\":{},\"threads\":{:?},\"dilation\":{},\"pool_bytes\":{}}}",
        git_commit(),
        scale.keys,
        scale.ops,
        scale.threads,
        scale.dilation,
        scale.pool_size
    )
}

/// Prints a standard figure header.
pub fn banner(figure: &str, what: &str, scale: &Scale) {
    println!("== {figure}: {what}");
    println!(
        "   scale: {} keys, {} ops, threads {:?}, dilation {}x (paper: 64M keys/ops, up to 112 threads)",
        scale.keys, scale.ops, scale.threads, scale.dilation
    );
}

/// Prints one table row: a label plus right-aligned columns.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:<22}");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
}

/// Formats a Mops number.
pub fn mops(v: f64) -> String {
    format!("{v:.3}")
}

/// Runs the full YCSB comparison of `kinds` over all five mixes with a
/// thread sweep, printing one table per mix (the Figure 9/10/11 harness).
///
/// `model_for_run` builds the NVM model configuration for the measured
/// phases (population runs with the model disabled for speed).
pub fn ycsb_comparison(
    figure: &str,
    kinds: &[Kind],
    space: KeySpace,
    scale: &Scale,
    distribution: ycsb::Distribution,
    model_for_run: &dyn Fn() -> pmem::model::NvmModelConfig,
) {
    use ycsb::{driver, DriverConfig, Mix, Workload};

    // One index instance per kind, loaded once; mixes run back-to-back like
    // the paper's harness.
    let mut indexes = Vec::new();
    for &kind in kinds {
        let name = format!("{figure}-{}", kind.name());
        let idx = AnyIndex::create(kind, &name, space, scale);
        driver::populate(&idx, space, scale.keys, 4);
        indexes.push((kind, idx));
    }

    for mix in Mix::all() {
        // L-A is measured on fresh trees in the paper; approximate by
        // inserting fresh keys beyond the populated range.
        println!(
            "-- {} ({:?} keys, {:?})",
            mix.short_name(),
            space,
            distribution
        );
        row(
            "threads",
            &scale
                .threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>(),
        );
        for (kind, idx) in &indexes {
            let mut cols = Vec::new();
            for &t in &scale.threads {
                pmem::model::set_config(model_for_run());
                let w = Workload::new(mix, distribution, scale.keys);
                let cfg = DriverConfig {
                    threads: t,
                    ops: scale.ops,
                    dilation: scale.dilation,
                    ..Default::default()
                };
                let r = driver::run_workload(idx, &w, space, &cfg);
                pmem::model::set_config(pmem::model::NvmModelConfig::disabled());
                cols.push(mops(r.mops));
            }
            row(kind.name(), &cols);
        }
    }
    for (_, idx) in indexes {
        idx.destroy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.keys > 0 && s.ops > 0 && !s.threads.is_empty());
    }

    #[test]
    fn range_check_rejects_absurd_values() {
        assert!(check_range("PAC_THREADS", 0, 1, 4096).is_err());
        assert!(check_range("PAC_THREADS", 5000, 1, 4096).is_err());
        assert!(check_range("PAC_THREADS", 16, 1, 4096).is_ok());
        let e = check_range("PAC_KEYS", 0, 1, 1 << 30).unwrap_err();
        assert!(
            e.contains("PAC_KEYS=0") && e.contains("out of range"),
            "{e}"
        );
    }

    #[test]
    fn stamp_json_is_wellformed() {
        let s = stamp_json(&Scale::tiny());
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"git_commit\":\""));
        assert!(s.contains("\"keys\":5000"));
        assert!(s.contains("\"threads\":[2]"));
    }

    #[test]
    fn any_index_roundtrip_every_kind() {
        let scale = Scale::tiny();
        for kind in Kind::all() {
            let name = format!("bench-any-{}", kind.name());
            let idx = AnyIndex::create(kind, &name, KeySpace::Integer, &scale);
            let k = 77u64.to_be_bytes();
            idx.insert(&k, 1);
            assert_eq!(idx.lookup(&k), Some(1), "{}", kind.name());
            idx.update(&k, 2);
            assert_eq!(idx.lookup(&k), Some(2));
            assert_eq!(RangeIndex::scan(&idx, &k, 10), 1);
            assert_eq!(RangeIndex::remove(&idx, &k), Some(2));
            assert_eq!(idx.lookup(&k), None);
            idx.destroy();
        }
    }
}
