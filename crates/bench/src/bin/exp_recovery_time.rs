//! Recovery-time comparison (the paper's §1/§4.2 "near-instant recovery"
//! claim): PACTree keeps even its search layer on NVM, so restart is log
//! replay plus a generation bump — O(pending SMOs). DRAM-hybrid designs
//! like FPTree must rebuild their entire inner structure by walking every
//! persistent leaf — O(data).

use std::time::Instant;

use baselines::fptree::FpTree;
use pactree::{PacTree, PacTreeConfig};
use ycsb::{driver, KeySpace};

fn main() {
    let keys: u64 = std::env::var("PAC_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    println!("== recovery time after loading {keys} keys");

    // PACTree: drop the instance, recover from the pools.
    let mut cfg = PacTreeConfig::named("rt-pac");
    cfg.pool_size = 1 << 30;
    let t = PacTree::create(cfg.clone()).unwrap();
    driver::populate(&t, KeySpace::Integer, keys, 4);
    drop(t);
    let t0 = Instant::now();
    let t = PacTree::recover(cfg).unwrap();
    let pac_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        t.lookup(&KeySpace::Integer.encode(keys / 2)),
        Some(keys / 2 + 1)
    );
    t.destroy();

    // FPTree: same data volume, inner structure rebuilt from the leaf chain.
    let fp = FpTree::create("rt-fp", 1 << 30).unwrap();
    driver::populate(&fp, KeySpace::Integer, keys, 4);
    let pool_name = "rt-fp";
    drop(fp);
    let t0 = Instant::now();
    let fp = FpTree::recover(pool_name).unwrap();
    let fp_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        fp.lookup(u64::from_be_bytes(
            KeySpace::Integer.encode(keys / 2).try_into().unwrap()
        )),
        Some(keys / 2 + 1)
    );
    fp.destroy();

    println!("PACTree recover: {pac_ms:8.2} ms (NVM search layer: replay + generation bump)");
    println!("FPTree  recover: {fp_ms:8.2} ms (DRAM inner rebuild: walks every leaf)");
    println!(
        "-- FPTree pays {:.1}x more, growing with data size",
        fp_ms / pac_ms.max(1e-6)
    );
}
