//! Figure 6: FPTree throughput and HTM aborts per operation, 50% lookup +
//! 50% insert, small vs large data set, thread sweep.
//!
//! Paper result (GC3): HTM aborts grow with both data-set size (capacity)
//! and thread count (conflicts + L1 sharing); at 56 threads / 64M keys it
//! averaged 5.4 aborts per operation and throughput collapsed.

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6",
        "FPTree HTM aborts/op and throughput (50% lookup + 50% insert)",
        &scale,
    );

    // Paper uses 10M vs 64M keys (6.4x); we keep the same ratio.
    let small = scale.keys / 6;
    let sizes = [("small", small.max(1000)), ("large", scale.keys)];

    for (label, keys) in sizes {
        println!("-- data set: {label} ({keys} keys)");
        let name = format!("fig06-{label}");
        let idx = AnyIndex::create(Kind::FpTree, &name, KeySpace::Integer, &scale);
        driver::populate(&idx, KeySpace::Integer, keys, 4);
        let fp = idx.as_fptree().expect("fptree").clone();

        let mut th_row = Vec::new();
        let mut mops_row = Vec::new();
        let mut abort_row = Vec::new();
        for &t in &scale.threads {
            fp.htm.stats.reset();
            model::set_config(NvmModelConfig::optane_dilated(
                CoherenceMode::Snoop,
                scale.dilation,
            ));
            let w = Workload::uniform(Mix::ReadInsert, keys);
            let cfg = DriverConfig {
                threads: t,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
            model::set_config(NvmModelConfig::disabled());
            th_row.push(t.to_string());
            mops_row.push(mops(r.mops));
            abort_row.push(format!("{:.2}", fp.htm.stats.aborts_per_op()));
        }
        row("threads", &th_row);
        row("Mops/s", &mops_row);
        row("aborts/op", &abort_row);
        idx.destroy();
    }
}
