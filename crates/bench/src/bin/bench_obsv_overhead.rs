//! Microbenchmark of the always-on observability layer's own cost.
//!
//! Every index operation pays one `obsv::OpTimer` pair (two TSC reads)
//! plus one relaxed striped `fetch_add` into a latency histogram. This
//! binary quantifies that cost on the path where it is proportionally
//! largest: uniform random lookups on PACTree with the NVM model disabled
//! (no modeled stalls to hide behind).
//!
//! Method: the run is split into many short slices; recording is toggled
//! (`obsv::set_enabled`) at barrier-synchronized slice boundaries. The
//! overhead estimate is the **median of per-pair ratios**: each adjacent
//! (on, off) slice pair executes within a few ms of each other and so
//! shares the host's noise regime, the order within a pair alternates
//! pair by pair (a fixed on-first order measurably biased "on" by ~2pp),
//! and the median discards the pairs where a scheduler stall landed
//! inside just one slice. Per-arm aggregates (plain sums, then
//! 20%-trimmed means) were tried first and still showed 3–18%
//! run-to-run spread on this 1-vCPU shared VM; coarse round-interleaving
//! was worse at ±30%. The bound (<5%) applies to the default sampling
//! config
//! (`obsv::DEFAULT_SAMPLE_SHIFT`, latency timed 1-in-16 with exact
//! counts); the full-fidelity config (`sample_shift = 0`, every op pays
//! the clock pair) is measured and reported too, for the record. When
//! built with `--features trace`, a third config wraps every lookup in
//! the request-tracing path (`stamp`/`span`/`finish_root` at the default
//! 1-in-64 tail sampling) and compares it against the recording-on
//! baseline — the PR-5 acceptance bound (<5% vs the pre-tracing
//! observability baseline). Results feed the EXPERIMENTS.md
//! observability section.
//!
//! A fourth arm measures the **time-series scrape loop** (`obsv::Scraper`
//! into `obsv::Tsdb`): both sides keep recording on, and the toggle is a
//! background scraper sampling the whole global registry — every gauge
//! callback (including PACTree's O(n) occupancy walk) plus a full
//! histogram snapshot per tick. Scrapes at the production 1 s cadence
//! would land in almost no ~ms slice, so the arm scrapes at a deliberately
//! brutal `PAC_OBSV_SCRAPE_MS` interval (default 10 ms, 100x production)
//! and reports both the raw overhead at that cadence and the number
//! linearly rescaled to the 1 s production interval, which is what the
//! <1% acceptance bound applies to. Scraping is a whole-arm toggle (the
//! scraper runs across slice boundaries), so this arm pairs trimmed
//! per-arm means from back-to-back runs instead of adjacent slices, with
//! the arm order alternating per trial.
//!
//! Results are stamped into `results/obsv_overhead.json` (schema
//! `obsv_overhead/v1`).
//!
//! Env knobs: `PAC_KEYS` (default 50k), `PAC_OBSV_OPS` (lookups per
//! thread per slice, default 2k), `PAC_OBSV_SLICES` (default 240),
//! `PAC_OBSV_THREADS` (default: host parallelism, capped at 4),
//! `PAC_OBSV_SCRAPE_MS` (default 10).
//! `--quick` shrinks everything for the CI smoke job.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use obsv::trace::{self, SpanKind, TraceOutcome};
use pactree::{PacTree, PacTreeConfig};
use pmem::model::{self, NvmModelConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use ycsb::{driver, KeySpace};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `slices` barrier-synchronized lookup slices, toggling the
/// measured feature between slices (even = on, odd = off). With
/// `traced = false` the toggle is histogram recording
/// (`obsv::set_enabled`); with `traced = true` recording stays on in
/// both arms and the toggle is the per-op tracing wrapper
/// (`stamp`/`span`/`finish_root` around every lookup), so the "off" arm
/// is exactly the pre-tracing observability baseline. Returns per-slice
/// wall-clock nanoseconds per arm: `(on_slices, off_slices)`.
fn run_sliced(
    tree: &PacTree,
    keys: u64,
    threads: usize,
    slice_ops: u64,
    slices: u64,
    traced: bool,
) -> (Vec<u64>, Vec<u64>) {
    let start_barrier = Barrier::new(threads + 1);
    let end_barrier = Barrier::new(threads + 1);
    let arm_on = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (start_barrier, end_barrier, arm_on) = (&start_barrier, &end_barrier, &arm_on);
            s.spawn(move || {
                pmem::numa::pin_thread_round_robin();
                let mut rng = StdRng::seed_from_u64(0xB0B ^ (t as u64).wrapping_mul(0x9E37));
                for _ in 0..slices {
                    start_barrier.wait();
                    if traced && arm_on.load(Ordering::Relaxed) {
                        for _ in 0..slice_ops {
                            let id = rng.gen_range(0..keys);
                            let ctx = trace::stamp();
                            let t0 = if ctx.is_sampled() {
                                obsv::clock::now_ns()
                            } else {
                                0
                            };
                            {
                                let _g = trace::span(ctx, SpanKind::IndexOp, 0);
                                std::hint::black_box(tree.lookup(&KeySpace::Integer.encode(id)));
                            }
                            trace::finish_root(ctx, t0, TraceOutcome::Ok);
                        }
                    } else {
                        for _ in 0..slice_ops {
                            let id = rng.gen_range(0..keys);
                            std::hint::black_box(tree.lookup(&KeySpace::Integer.encode(id)));
                        }
                    }
                    end_barrier.wait();
                }
            });
        }
        let (mut on, mut off) = (Vec::new(), Vec::new());
        for slice in 0..slices {
            // Adjacent slices form an (on, off) pair; the order within
            // the pair alternates pair by pair so first-slot effects
            // (barrier wake pattern, steal-quantum phase) cancel instead
            // of biasing one arm.
            let enabled = (slice % 2 == 0) ^ ((slice / 2) % 2 == 1);
            if traced {
                arm_on.store(enabled, Ordering::Relaxed);
            } else {
                obsv::set_enabled(enabled);
            }
            start_barrier.wait();
            let t0 = Instant::now();
            end_barrier.wait();
            let ns = t0.elapsed().as_nanos() as u64;
            if enabled { &mut on } else { &mut off }.push(ns);
        }
        obsv::set_enabled(true);
        (on, off)
    })
}

/// Runs `slices` barrier-paced lookup slices with recording enabled
/// throughout (nothing toggles between slices) and returns per-slice wall
/// nanoseconds — one arm of the scraper measurement.
fn run_plain_slices(
    tree: &PacTree,
    keys: u64,
    threads: usize,
    slice_ops: u64,
    slices: u64,
) -> Vec<u64> {
    let start_barrier = Barrier::new(threads + 1);
    let end_barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (start_barrier, end_barrier) = (&start_barrier, &end_barrier);
            s.spawn(move || {
                pmem::numa::pin_thread_round_robin();
                let mut rng = StdRng::seed_from_u64(0xACE ^ (t as u64).wrapping_mul(0x9E37));
                for _ in 0..slices {
                    start_barrier.wait();
                    for _ in 0..slice_ops {
                        let id = rng.gen_range(0..keys);
                        std::hint::black_box(tree.lookup(&KeySpace::Integer.encode(id)));
                    }
                    end_barrier.wait();
                }
            });
        }
        let mut ns = Vec::with_capacity(slices as usize);
        for _ in 0..slices {
            start_barrier.wait();
            let t0 = Instant::now();
            end_barrier.wait();
            ns.push(t0.elapsed().as_nanos() as u64);
        }
        ns
    })
}

/// One scraper trial: the same slice workload once with a background
/// [`obsv::Scraper`] pulling the global registry every `interval`, once
/// without (order given by `scraper_first`). Returns
/// `(on_mops, off_mops, overhead_pct)` from the trimmed per-arm means.
fn measure_scraper(
    tree: &PacTree,
    keys: u64,
    threads: usize,
    slice_ops: u64,
    slices: u64,
    interval: std::time::Duration,
    scraper_first: bool,
) -> (f64, f64, f64) {
    let run_arm = |scraping: bool| -> Vec<u64> {
        if scraping {
            let tsdb = obsv::Tsdb::with_retention(interval, std::time::Duration::from_secs(60));
            let scraper = obsv::Scraper::start(tsdb, interval, None);
            let ns = run_plain_slices(tree, keys, threads, slice_ops, slices);
            scraper.stop();
            ns
        } else {
            run_plain_slices(tree, keys, threads, slice_ops, slices)
        }
    };
    let (on, off) = if scraper_first {
        let on = run_arm(true);
        (on, run_arm(false))
    } else {
        let off = run_arm(false);
        (run_arm(true), off)
    };
    let slice_total_ops = (threads as u64 * slice_ops) as f64;
    let on_ns = trimmed_mean_ns(&on);
    let off_ns = trimmed_mean_ns(&off);
    (
        slice_total_ops * 1e3 / on_ns,
        slice_total_ops * 1e3 / off_ns,
        (on_ns - off_ns) / off_ns * 100.0,
    )
}

/// Mean of the middle 60% of `slices` (20% trimmed from each end); used
/// only for the displayed per-arm throughputs.
fn trimmed_mean_ns(slices: &[u64]) -> f64 {
    let mut v = slices.to_vec();
    v.sort_unstable();
    let trim = v.len() / 5;
    let mid = &v[trim..v.len() - trim];
    mid.iter().sum::<u64>() as f64 / mid.len() as f64
}

/// One measured configuration at the current sampling config: returns
/// `(on_mops, off_mops, overhead_pct)` where the overhead is the median
/// of per-adjacent-pair slowdown ratios `(on_i - off_i) / off_i`.
fn measure(
    tree: &PacTree,
    keys: u64,
    threads: usize,
    slice_ops: u64,
    slices: u64,
    traced: bool,
) -> (f64, f64, f64) {
    let (on, off) = run_sliced(tree, keys, threads, slice_ops, slices, traced);
    let slice_total_ops = (threads as u64 * slice_ops) as f64;
    let on_mops = slice_total_ops * 1e3 / trimmed_mean_ns(&on);
    let off_mops = slice_total_ops * 1e3 / trimmed_mean_ns(&off);
    let mut ratios: Vec<f64> = on
        .iter()
        .zip(off.iter())
        .map(|(&a, &b)| (a as f64 - b as f64) / b as f64 * 100.0)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = ratios[ratios.len() / 2];
    (on_mops, off_mops, overhead)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let keys = if quick {
        10_000
    } else {
        env_u64("PAC_KEYS", 50_000)
    };
    let slice_ops = if quick {
        1_500
    } else {
        env_u64("PAC_OBSV_OPS", 2_000)
    };
    let slices = if quick {
        40
    } else {
        env_u64("PAC_OBSV_SLICES", 240)
    };
    // Match the host's real parallelism: unlike the figure binaries this
    // bench measures *cost*, and oversubscribing a small VM (this box
    // often exposes 1 vCPU) only adds scheduler churn to both arms. Its
    // own knob, so run_figures.sh's PAC_THREADS scale doesn't apply.
    let host = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    let threads = env_u64("PAC_OBSV_THREADS", host.min(4)) as usize;

    println!("== obsv overhead: uniform lookups, model disabled");
    println!(
        "   {keys} keys, {threads} threads, {slices} alternating slices x {slice_ops} ops/thread"
    );

    pmem::numa::set_topology(1);
    model::set_config(NvmModelConfig::disabled());
    let tree =
        PacTree::create(PacTreeConfig::named("bench-obsv-ovh").with_pool_size((256usize) << 20))
            .expect("create pactree");
    driver::populate(&tree, KeySpace::Integer, keys, 4);

    // Warmup: one unmeasured pass (touches every leaf; fills caches and
    // spins the VM/cpufreq up before either arm is timed).
    run_sliced(&tree, keys, threads, slice_ops, 8, false);

    // Three configs: the default always-on one (exact counts every op,
    // latency sampled 1-in-2^DEFAULT_SAMPLE_SHIFT) that the <5% bound
    // applies to, full fidelity (every op pays the clock pair, what
    // fig13_tail opts into) reported for the record, and — when the
    // `trace` feature is compiled in — per-op request tracing at the
    // default 1-in-64 tail sampling, measured against the recording-on
    // baseline (its off arm keeps recording enabled). Three interleaved
    // trials per config, medianed: noise regimes on a shared VM last
    // tens of seconds, so a single trial can land entirely inside one.
    const TRIALS: usize = 3;
    let configs = [
        (obsv::DEFAULT_SAMPLE_SHIFT, false, "sampled 1/16 (default)"),
        (0u32, false, "full fidelity (shift 0)"),
        (obsv::DEFAULT_SAMPLE_SHIFT, true, "tracing (tail-sampled)"),
    ];
    let trace_live = trace::compiled();
    if !trace_live {
        println!("   note: `trace` feature not compiled in; tracing arm measures the no-op stubs");
    }
    let mut results = [const { Vec::new() }; 3];
    for _trial in 0..TRIALS {
        for (i, &(shift, traced, _)) in configs.iter().enumerate() {
            obsv::set_sample_shift(shift);
            results[i].push(measure(&tree, keys, threads, slice_ops, slices, traced));
            if traced {
                trace::clear_retained();
            }
        }
    }
    obsv::set_sample_shift(obsv::DEFAULT_SAMPLE_SHIFT);

    println!(
        "{:<26} {:>10} {:>10} {:>9}  trials",
        "config", "on Mops/s", "off Mops/s", "overhead"
    );
    let mut medians = [0.0f64; 3];
    for (i, &(_, _, label)) in configs.iter().enumerate() {
        let trials = &mut results[i];
        trials.sort_by(|a, b| a.2.total_cmp(&b.2));
        let (on_mops, off_mops, overhead) = trials[TRIALS / 2];
        medians[i] = overhead;
        let all = trials
            .iter()
            .map(|t| format!("{:.2}%", t.2))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{label:<26} {on_mops:>10.3} {off_mops:>10.3} {overhead:>8.2}%  [{all}]");
    }
    let overhead = medians[0];
    println!("-- overhead {overhead:.2}% (median of {TRIALS} trials, default sampling)");
    println!(
        "-- verdict: {} (bound: <5% at default sampling)",
        if overhead < 5.0 { "PASS" } else { "FAIL" }
    );
    if trace_live {
        println!(
            "-- tracing verdict: {} (bound: <5% vs recording-on baseline at default tail sampling)",
            if medians[2] < 5.0 { "PASS" } else { "FAIL" }
        );
    }

    // Fourth arm: the tsdb scrape loop, at a deliberately brutal cadence,
    // then rescaled to the production 1 s interval for the verdict.
    let scrape_ms = env_u64("PAC_OBSV_SCRAPE_MS", 10).max(1);
    let interval = std::time::Duration::from_millis(scrape_ms);
    let mut scraper_trials: Vec<(f64, f64, f64)> = (0..TRIALS)
        .map(|t| {
            measure_scraper(
                &tree,
                keys,
                threads,
                slice_ops,
                slices,
                interval,
                t % 2 == 0,
            )
        })
        .collect();
    scraper_trials.sort_by(|a, b| a.2.total_cmp(&b.2));
    let (s_on, s_off, s_raw) = scraper_trials[TRIALS / 2];
    let scaled = s_raw * scrape_ms as f64 / 1000.0;
    let s_all = scraper_trials
        .iter()
        .map(|t| format!("{:.2}%", t.2))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "{:<26} {s_on:>10.3} {s_off:>10.3} {s_raw:>8.2}%  [{s_all}]",
        format!("scraper ({scrape_ms}ms interval)")
    );
    println!(
        "-- scrape loop: {s_raw:.2}% at {scrape_ms}ms = {scaled:.4}% rescaled to the 1s production interval"
    );
    let scraper_pass = scaled < 1.0;
    println!(
        "-- scraper verdict: {} (bound: <1% at the 1s interval)",
        if scraper_pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        concat!(
            "{{\"schema\":\"obsv_overhead/v1\",\"git_commit\":\"{}\",",
            "\"keys\":{},\"threads\":{},\"slices\":{},\"slice_ops\":{},\"trials\":{},",
            "\"sampled_pct\":{:.4},\"full_fidelity_pct\":{:.4},",
            "\"tracing_pct\":{:.4},\"tracing_compiled\":{},",
            "\"scraper\":{{\"interval_ms\":{},\"raw_pct\":{:.4},\"scaled_1s_pct\":{:.6},",
            "\"on_mops\":{:.4},\"off_mops\":{:.4}}},",
            "\"verdict\":\"{}\",\"scraper_verdict\":\"{}\"}}"
        ),
        bench::git_commit(),
        keys,
        threads,
        slices,
        slice_ops,
        TRIALS,
        medians[0],
        medians[1],
        medians[2],
        trace_live,
        scrape_ms,
        s_raw,
        scaled,
        s_on,
        s_off,
        if overhead < 5.0 { "PASS" } else { "FAIL" },
        if scraper_pass { "PASS" } else { "FAIL" },
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/obsv_overhead.json", &json) {
        Ok(()) => println!("wrote results/obsv_overhead.json"),
        Err(e) => eprintln!("could not write results/obsv_overhead.json: {e}"),
    }
    tree.destroy();
}
