//! Figure 2: FastFair throughput under snoop vs directory coherence,
//! YCSB-A integer keys, thread sweep.
//!
//! Paper result: directory-protocol throughput plateaus early (remote reads
//! generate media directory writes that eat the scarce write bandwidth);
//! snoop keeps scaling (~2.5x better at high threads).

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    banner(
        "Figure 2",
        "FastFair YCSB-A (integer), snoop vs directory coherence",
        &scale,
    );

    let mut results: Vec<(CoherenceMode, Vec<f64>)> = Vec::new();
    for coherence in [CoherenceMode::Directory, CoherenceMode::Snoop] {
        let name = format!("fig02-{coherence:?}");
        let idx = AnyIndex::create(Kind::FastFair, &name, KeySpace::Integer, &scale);
        driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
        let mut series = Vec::new();
        for &t in &scale.threads {
            model::set_config(NvmModelConfig::optane_dilated(coherence, scale.dilation));
            let w = Workload::zipfian(Mix::A, scale.keys);
            let cfg = DriverConfig {
                threads: t,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
            model::set_config(NvmModelConfig::disabled());
            series.push(r.mops);
        }
        results.push((coherence, series));
        idx.destroy();
    }

    row(
        "threads",
        &scale
            .threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>(),
    );
    for (coherence, series) in &results {
        row(
            &format!("{coherence:?} (Mops/s)"),
            &series.iter().map(|&v| mops(v)).collect::<Vec<_>>(),
        );
    }
    let last = scale.threads.len() - 1;
    println!(
        "-- snoop/directory at max threads: {:.2}x (paper: ~2.5x)",
        results[1].1[last] / results[0].1[last].max(1e-9)
    );
}
