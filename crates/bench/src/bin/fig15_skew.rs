//! Figure 15: PACTree under varying Zipfian skew, 50% lookup + 50% update
//! and 50% lookup + 50% insert, at two thread counts.
//!
//! Paper result: the update mix *gains* with skew (hot data nodes stay
//! cache-resident; updates have a short critical path); the insert mix is
//! flat (async search-layer updates absorb the split pressure).

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, Distribution, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    banner(
        "Figure 15",
        "PACTree skew sensitivity (Zipfian coefficient sweep)",
        &scale,
    );
    let thetas = [0.5, 0.6, 0.7, 0.8, 0.9, 0.99];
    let t_low = (scale.max_threads() / 2).max(1);
    let t_high = scale.max_threads();

    for (label, mix) in [
        ("50% lookup + 50% update", Mix::A),
        ("50% lookup + 50% insert", Mix::ReadInsert),
    ] {
        println!("-- {label}");
        row(
            "theta",
            &thetas.iter().map(|t| format!("{t}")).collect::<Vec<_>>(),
        );
        for threads in [t_low, t_high] {
            let name = format!("fig15-{}-{threads}", mix.short_name());
            let idx = AnyIndex::create(Kind::PacTree, &name, KeySpace::Integer, &scale);
            driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
            let mut cols = Vec::new();
            for &theta in &thetas {
                model::set_config(NvmModelConfig::optane_dilated(
                    CoherenceMode::Snoop,
                    scale.dilation,
                ));
                let w = Workload::new(mix, Distribution::Zipfian(theta), scale.keys);
                let cfg = DriverConfig {
                    threads,
                    ops: scale.ops / 2,
                    dilation: scale.dilation,
                    ..Default::default()
                };
                let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
                model::set_config(NvmModelConfig::disabled());
                cols.push(mops(r.mops));
            }
            row(&format!("{threads} threads"), &cols);
            idx.destroy();
        }
    }
}
