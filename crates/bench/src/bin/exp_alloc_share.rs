//! GA3: share of execution time spent in the NVM allocator for an
//! insert-only workload.
//!
//! Paper measurement (perf, YCSB Load A): FastFair 2%, PDL-ART 20%,
//! BzTree 40% — and consequently FastFair outperforms BzTree by 3x.

use bench::{banner, row, AnyIndex, Kind, Scale};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let scale = Scale::from_env();
    banner(
        "GA3",
        "time share spent in the allocator (insert-only)",
        &scale,
    );
    let threads = scale.max_threads().min(28);

    row(
        "index",
        &["alloc-time %".into(), "allocs/op".into(), "Mops/s".into()],
    );
    for kind in [Kind::FastFair, Kind::PdlArt, Kind::BzTree, Kind::PacTree] {
        let name = format!("exp-alloc-{}", kind.name());
        let idx = AnyIndex::create(kind, &name, KeySpace::Integer, &scale);
        // No latency model: we compare real CPU time in the allocator.
        let w = Workload::uniform(Mix::LoadA, 0);
        let cfg = DriverConfig {
            threads,
            ops: scale.ops,
            dilation: 1.0,
            ..Default::default()
        };
        let before = pmem::stats::global().snapshot();
        let t0 = std::time::Instant::now();
        let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
        let wall = t0.elapsed().as_nanos() as u64 * threads as u64;
        let d = pmem::stats::global().snapshot().since(&before);
        row(
            kind.name(),
            &[
                format!("{:.1}%", 100.0 * d.alloc_ns as f64 / wall.max(1) as f64),
                format!("{:.2}", d.allocs as f64 / r.ops.max(1) as f64),
                format!("{:.3}", r.mops),
            ],
        );
        idx.destroy();
    }
    println!("-- paper: FastFair 2%, PDL-ART 20%, BzTree 40% of time in the PMDK allocator");
}
