//! Crash-state model-checking CLI.
//!
//! ```text
//! crashcheck run [--index pactree,pdl-art|all] [--seed N] [--budget-secs N]
//!                [--target-states N] [--ops N] [--keyspace N]
//!                [--snapshot-every N] [--expect-clean pactree,pdl-art]
//!                [--out results]
//! crashcheck replay <file>
//! ```
//!
//! `run` executes one campaign per selected index and writes a one-line
//! JSON summary (plus shrunk replay files for any violation) to the output
//! directory. The exit code is non-zero only if an index named in
//! `--expect-clean` reported a violation — the baselines are *expected* to
//! have torn-state findings; that is what the checker is for.
//!
//! `replay` re-runs a serialized failing crash state deterministically.
//!
//! `--snapshot-every N` turns on the MVCC version-chain campaign: the
//! traced workload takes a snapshot every N ops, so the enumerated crash
//! states cover the freeze/COW machinery, and every snapshot's view is
//! verified against a shadow model during the run. Indexes without
//! snapshot support ignore the flag.

use std::process::ExitCode;
use std::time::Duration;

use crashcheck::{run_campaign, run_replay, CampaignOpts, IndexKind, Replay};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  crashcheck run [--index <names|all>] [--seed N] [--budget-secs N]\n               \
         [--target-states N] [--ops N] [--keyspace N]\n               \
         [--snapshot-every N] [--expect-clean <names>] [--out <dir>]\n  crashcheck replay <file>"
    );
    ExitCode::from(2)
}

fn parse_kinds(arg: &str) -> Result<Vec<IndexKind>, String> {
    if arg == "all" {
        return Ok(IndexKind::all().to_vec());
    }
    arg.split(',')
        .map(|s| IndexKind::parse(s.trim()).ok_or_else(|| format!("unknown index: {s}")))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut kinds = IndexKind::all().to_vec();
    let mut expect_clean: Vec<IndexKind> = vec![IndexKind::PacTree, IndexKind::PdlArt];
    let mut seed = 42u64;
    let mut budget = Duration::from_secs(30);
    let mut target_states = 0u64;
    let mut ops = None;
    let mut keyspace = None;
    let mut snapshot_every = 0usize;
    let mut out: Option<String> = Some("results".to_string());

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        let res: Result<(), String> = (|| {
            match flag.as_str() {
                "--index" => kinds = parse_kinds(&val()?)?,
                "--expect-clean" => expect_clean = parse_kinds(&val()?)?,
                "--seed" => seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--budget-secs" => {
                    budget = Duration::from_secs(
                        val()?.parse().map_err(|e| format!("--budget-secs: {e}"))?,
                    )
                }
                "--target-states" => {
                    target_states = val()?
                        .parse()
                        .map_err(|e| format!("--target-states: {e}"))?
                }
                "--ops" => ops = Some(val()?.parse().map_err(|e| format!("--ops: {e}"))?),
                "--keyspace" => {
                    keyspace = Some(val()?.parse().map_err(|e| format!("--keyspace: {e}"))?)
                }
                "--snapshot-every" => {
                    snapshot_every = val()?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?
                }
                "--out" => {
                    let v = val()?;
                    out = (v != "none").then_some(v);
                }
                other => return Err(format!("unknown flag: {other}")),
            }
            Ok(())
        })();
        if let Err(e) = res {
            eprintln!("error: {e}");
            return usage();
        }
    }

    let mut failed = false;
    for kind in kinds {
        let mut opts = CampaignOpts::new(kind, seed);
        opts.budget = budget;
        opts.target_states = target_states;
        if let Some(n) = ops {
            opts.ops = n;
        }
        if let Some(n) = keyspace {
            opts.keyspace = n;
        }
        opts.snapshot_every = snapshot_every;
        opts.out_dir = out.clone().map(Into::into);
        match run_campaign(&opts) {
            Ok(summary) => {
                println!("{}", summary.to_json());
                for v in &summary.violations {
                    eprintln!(
                        "{}: VIOLATION {}{}",
                        kind.name(),
                        v.replay.violation,
                        v.path
                            .as_deref()
                            .map(|p| format!(" (replay: {})", p.display()))
                            .unwrap_or_default()
                    );
                }
                if !summary.violations.is_empty() && expect_clean.contains(&kind) {
                    eprintln!(
                        "{}: expected clean but found {} violation(s)",
                        kind.name(),
                        summary.violations.len()
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{}: campaign failed: {e}", kind.name());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replay = match Replay::parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_replay(&replay) {
        Ok(Some(v)) => {
            println!("reproduced: {v}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!("state no longer fails (fixed?)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
