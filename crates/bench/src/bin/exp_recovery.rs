//! §6.8: recovery — crash the index repeatedly, recover, verify every
//! previously acknowledged key is accessible.
//!
//! Paper result: 100/100 successful recoveries. `PAC_CRASH_ROUNDS`
//! overrides the round count.

use pactree::{PacTree, PacTreeConfig};
use pmem::crash;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let rounds: usize = std::env::var("PAC_CRASH_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("== §6.8: {rounds} crash injections with full verification");

    let mut cfg = PacTreeConfig::durable("exp-recovery");
    cfg.numa_pools = 1;
    cfg.pool_size = 256 << 20;
    let mut tree = PacTree::create(cfg.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut model = std::collections::BTreeMap::new();
    let mut ok = 0;

    for round in 0..rounds {
        for _ in 0..300 {
            let k: u64 = rng.gen_range(0..20_000);
            if rng.gen_bool(0.8) {
                let v: u64 = rng.gen();
                tree.insert(&k.to_be_bytes(), v).unwrap();
                model.insert(k, v);
            } else {
                tree.remove(&k.to_be_bytes()).unwrap();
                model.remove(&k);
            }
        }
        for p in tree.pools() {
            crash::evict_random_lines(&p, 32, &mut rng);
        }
        let pools = tree.pools();
        tree.stop_updater();
        crash::crash_all(&pools, round % 5 == 0);
        drop(tree);
        tree = PacTree::recover(cfg.clone()).unwrap();
        let mut good = true;
        for (k, v) in &model {
            if tree.lookup(&k.to_be_bytes()) != Some(*v) {
                println!("round {round}: KEY {k} LOST");
                good = false;
            }
        }
        tree.check_invariants();
        if good {
            ok += 1;
        }
    }
    println!("-- {ok}/{rounds} recoveries verified (paper: 100/100)");
    tree.destroy();
    assert_eq!(ok, rounds);
}
