//! mvcc-bench: the versioning subsystem's acceptance numbers.
//!
//! Four measured phases over PACTree's MVCC layer:
//!
//! 1. **snapshot O(1)** — `snapshot()`+`release_snapshot()` cost measured
//!    against trees of increasing size; creation must be flat (path
//!    copying is deferred to mutations, so tree size cannot appear in the
//!    creation cost);
//! 2. **writer retention** — the same writer workload with zero vs one
//!    *held* live snapshot (every mutation pays the freeze/COW tax); the
//!    headline is the retention ratio, target >= 0.80;
//! 3. **zero-live A/B** — writers again after the snapshot is released:
//!    with no live snapshots the fast paths must be unchanged (ratio to
//!    the baseline within noise);
//! 4. **scan interference** — long concurrent scans via
//!    [`ycsb::interference`]: writer throughput with live scans vs
//!    snapshot-isolated scans.
//!
//! Writes `results/mvcc_bench.json` (schema `mvcc_bench/v1`, stamped with
//! git commit + configuration). `--quick` shrinks everything for CI.

use std::time::Instant;

use bench::{banner, mops, row, stamp_json, Scale};
use pactree::{PacTree, PacTreeConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::interference::{run_interference, InterferenceConfig, ScanMode};
use ycsb::{driver, KeySpace};

/// Average cost of one `snapshot()` + `release_snapshot()` pair, in ns.
fn snapshot_cost_ns(tree: &PacTree, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let snap = tree.snapshot();
        tree.release_snapshot(snap);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    pmem::numa::set_topology(2);
    let scale = if quick {
        Scale {
            keys: 8_000,
            ops: 8_000,
            threads: vec![4],
            dilation: 32.0,
            pool_size: 256 << 20,
        }
    } else {
        Scale::from_env()
    };
    banner(
        "mvcc-bench",
        "snapshot cost, writer retention, scan isolation",
        &scale,
    );
    let space = KeySpace::Integer;
    let iters: u64 = if quick { 2_000 } else { 10_000 };

    // Phase 1: snapshot creation cost vs tree size (model off: this is a
    // DRAM-side registration, and we want the raw CPU cost).
    let sizes = [
        (scale.keys / 10).max(1_000),
        (scale.keys / 3).max(1_000),
        scale.keys.max(1_000),
    ];
    println!("-- snapshot()+release cost vs tree size ({iters} iters)");
    row("keys", &["ns/snapshot".into()]);
    let mut costs = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let tree = PacTree::create(
            PacTreeConfig::named(&format!("mvcc-bench-size-{i}")).with_pool_size(scale.pool_size),
        )
        .expect("create pactree");
        driver::populate(&tree, space, n, 4);
        let ns = snapshot_cost_ns(&tree, iters);
        row(&n.to_string(), &[format!("{ns:.0}")]);
        costs.push((n, ns));
        tree.destroy();
    }
    let flatness = costs.iter().map(|&(_, ns)| ns).fold(0.0, f64::max)
        / costs.iter().map(|&(_, ns)| ns).fold(f64::MAX, f64::min);
    println!("-- flatness (max/min): {flatness:.2}x (O(1) target: flat)");

    // Phases 2-4 share one populated tree; the NVM model runs dilated for
    // every measured writer phase so the A/B comparisons are like-for-like.
    let tree = PacTree::create(PacTreeConfig::named("mvcc-bench").with_pool_size(scale.pool_size))
        .expect("create pactree");
    driver::populate(&tree, space, scale.keys, 4);
    let writers = scale.max_threads().clamp(1, 8);
    let cfg = InterferenceConfig {
        writers,
        scanners: (writers / 4).max(1),
        scan_len: if quick { 200 } else { 1_000 },
        ops_per_writer: (scale.ops / writers as u64).max(1),
        dilation: scale.dilation,
        seed: 42,
    };
    let measured = |mode: ScanMode| {
        model::set_config(NvmModelConfig::optane_dilated(
            CoherenceMode::Snoop,
            scale.dilation,
        ));
        let r = run_interference(&tree, space, scale.keys, mode, &cfg);
        model::set_config(NvmModelConfig::disabled());
        r
    };

    // Phase 2: writer-only, zero vs one held snapshot. One unmeasured
    // warm-up round first, so phase ordering (cold caches, first-touch
    // faults) doesn't masquerade as MVCC overhead in the A/B ratios.
    run_interference(&tree, space, scale.keys, ScanMode::None, &cfg);
    let base = measured(ScanMode::None);
    let held_snap = tree.snapshot();
    let held = measured(ScanMode::None);
    assert!(tree.release_snapshot(held_snap), "held snapshot was live");
    let retention = held.writer_mops / base.writer_mops.max(1e-12);

    // Phase 3: zero live snapshots again — the chain exists now, but the
    // fast paths must not remember it.
    let after = measured(ScanMode::None);
    let ab_ratio = after.writer_mops / base.writer_mops.max(1e-12);

    println!("-- writer throughput (model-time Mops/s, t={writers})");
    row("phase", &["Mops".into(), "vs baseline".into()]);
    row("no snapshot", &[mops(base.writer_mops), "1.000".into()]);
    row(
        "one held snapshot",
        &[mops(held.writer_mops), format!("{retention:.3}")],
    );
    row(
        "after release",
        &[mops(after.writer_mops), format!("{ab_ratio:.3}")],
    );

    // Phase 4: long scans concurrent with the writers.
    let live = measured(ScanMode::Live);
    let snap = measured(ScanMode::Snapshot);
    let live_ret = live.writer_mops / base.writer_mops.max(1e-12);
    let snap_ret = snap.writer_mops / base.writer_mops.max(1e-12);
    println!(
        "-- scan interference ({} scanners, {}-key scans)",
        cfg.scanners, cfg.scan_len
    );
    row(
        "mode",
        &["writer Mops".into(), "retention".into(), "scans".into()],
    );
    row(
        "live scans",
        &[
            mops(live.writer_mops),
            format!("{live_ret:.3}"),
            live.scans.to_string(),
        ],
    );
    row(
        "snapshot scans",
        &[
            mops(snap.writer_mops),
            format!("{snap_ret:.3}"),
            snap.scans.to_string(),
        ],
    );
    assert_eq!(tree.mvcc().live_snapshots(), 0, "all snapshots released");

    let snapshot_cost: Vec<String> = costs
        .iter()
        .map(|&(n, ns)| format!("{{\"keys\":{n},\"ns\":{ns:.1}}}"))
        .collect();
    let json = format!(
        concat!(
            "{{\"schema\":\"mvcc_bench/v1\",\"stamp\":{},",
            "\"snapshot_cost\":[{}],\"flatness\":{:.4},",
            "\"writer\":{{\"baseline_mops\":{:.6},\"held_snapshot_mops\":{:.6},",
            "\"retention\":{:.4},\"after_release_mops\":{:.6},\"ab_ratio\":{:.4}}},",
            "\"interference\":{{\"scanners\":{},\"scan_len\":{},",
            "\"live_mops\":{:.6},\"live_retention\":{:.4},\"live_scans\":{},",
            "\"snapshot_mops\":{:.6},\"snapshot_retention\":{:.4},\"snapshot_scans\":{}}}}}"
        ),
        stamp_json(&scale),
        snapshot_cost.join(","),
        flatness,
        base.writer_mops,
        held.writer_mops,
        retention,
        after.writer_mops,
        ab_ratio,
        cfg.scanners,
        cfg.scan_len,
        live.writer_mops,
        live_ret,
        live.scans,
        snap.writer_mops,
        snap_ret,
        snap.scans,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/mvcc_bench.json", &json) {
        Ok(()) => println!("wrote results/mvcc_bench.json"),
        Err(e) => eprintln!("could not write results/mvcc_bench.json: {e}"),
    }

    // The CI smoke job greps for this line: snapshot creation must be flat
    // and the writers must keep >= 80% of their throughput under a live
    // snapshot (the issue's acceptance bar).
    let clean = flatness <= 3.0 && retention >= 0.80;
    println!(
        "mvcc-bench: {} (flatness {flatness:.2}x, retention {retention:.3})",
        if clean { "CLEAN" } else { "DIRTY" },
    );
    tree.destroy();
    if !clean {
        std::process::exit(1);
    }
}
