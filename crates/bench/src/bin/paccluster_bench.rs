//! paccluster-bench: rebalance latency for the partitioned pacsrv cluster.
//!
//! Builds a 3-node in-process cluster (three PACTrees behind three
//! `ClusterNode`/`TcpServer` pairs on loopback), loads a hot-partition
//! key distribution (`ycsb::HotPartition`, 80% of ids pinned to
//! partition 0), then measures client-observed latency through the smart
//! `RouterClient` across three windows:
//!
//! 1. **steady** — closed-loop gets/puts against the initial map;
//! 2. **migration** — the same traffic while partition 0 live-migrates
//!    from node 0 to node 1 (bulk copy + delta replay + seal + flip);
//! 3. **post** — traffic after the epoch flip has converged.
//!
//! The headline is the migration-window p99 vs steady-state p99: the
//! acceptance gate is `migration p99 <= 3 x max(steady p99, 200us)`.
//! The 200us floor keeps the ratio meaningful on loopback, where a
//! steady-state p99 of a few microseconds would make any scheduling
//! hiccup look like a regression.
//!
//! Latencies here are wall-clock (real TCP round trips), not NVM
//! model-time — the figure under test is routing and migration overhead,
//! not media latency.
//!
//! Writes `results/paccluster_bench.json` (schema `paccluster_bench/v1`,
//! stamped with git commit + configuration). `--quick` shrinks the run
//! for the CI cluster-smoke job.
//!
//! The fleet plane rides along: an [`obsv::fleet::FleetScraper`] polls
//! every node's health endpoint through the whole run (stuck-migration
//! bound configurable via `PACSRV_STUCK_MIGRATION_MS`, default 30 000),
//! its `slo_events/v1` transitions land in `results/fleet_events.jsonl`,
//! the merged page in `results/fleet_merged.txt`, and the per-partition
//! heat counters — with the rebalance-advisor verdict and the
//! fleet-merged-vs-direct p99 gate — in `results/fleet_heat.json`
//! (schema `fleet_heat/v1`). When tracing is compiled in, a short A/B
//! window reports the traced-cluster overhead at the default 1-in-64
//! sampling (advisory, target <= 5%).

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{banner, row, stamp_json, Scale};
use obsv::fleet::{FleetScraper, FleetSloConfig, DEFAULT_STUCK_MIGRATION_BOUND_NS};
use obsv::hist::{HistSnapshot, RELATIVE_ERROR_BOUND};
use pacsrv::cluster::{ClusterNode, RouterClient};
use pacsrv::wire::{MigrateOp, PartitionMap, Request, Response};
use pacsrv::{HealthServer, PacService, ServiceConfig, TcpClient, TcpServer};
use pactree::tree::{PacTree, PacTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ycsb::HotPartition;

const NODES: usize = 3;
const HOT_PARTITION: u32 = 0;
const HOT_FRACTION: f64 = 0.8;
const P99_RATIO_LIMIT: f64 = 3.0;
/// Anti-flake floor for the steady-state p99 used in the ratio gate.
const P99_FLOOR_US: f64 = 200.0;

const WIN_STEADY: u8 = 0;
const WIN_MIGRATION: u8 = 1;
const WIN_POST: u8 = 2;
const WIN_STOP: u8 = 3;

struct Window {
    label: &'static str,
    lat_us: Vec<u64>,
}

impl Window {
    fn quantile(&mut self, q: f64) -> f64 {
        if self.lat_us.is_empty() {
            return 0.0;
        }
        self.lat_us.sort_unstable();
        let i = ((self.lat_us.len() as f64 - 1.0) * q).round() as usize;
        self.lat_us[i] as f64
    }
}

/// Pulls `"field":<int>` out of the migration report JSON without a JSON
/// parser (the report is machine-written by `MigrationReport::to_json`).
fn json_u64(detail: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let Some(at) = detail.find(&needle) else {
        return 0;
    };
    detail[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            keys: 6_000,
            ops: 0, // windows are time-based, not op-counted
            threads: vec![4],
            dilation: 1.0,
            pool_size: 96 << 20,
        }
    } else {
        Scale {
            pool_size: 256 << 20,
            dilation: 1.0,
            ..Scale::from_env()
        }
    };
    let clients = scale.max_threads().clamp(2, 8);
    let (steady_ms, migration_extra_ms, post_ms) = if quick {
        (400, 200, 300)
    } else {
        (2_000, 500, 1_000)
    };
    banner(
        "paccluster-bench",
        "3-node cluster: latency through a live partition-0 migration",
        &scale,
    );

    // Bind listeners first so the partition map can name real endpoints
    // before any node exists.
    let listeners: Vec<TcpListener> = (0..NODES)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let endpoints: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let map = PartitionMap::split_u64(&endpoints);
    println!("cluster endpoints: {}", endpoints.join(","));

    let mut nodes = Vec::new();
    let mut servers = Vec::new();
    let mut health = Vec::new();
    let mut trees = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let name = format!("paccluster-bench-{i}");
        let tree = PacTree::create(
            PacTreeConfig::named(&name)
                .with_pool_size(scale.pool_size / NODES)
                .with_numa_pools(1),
        )
        .expect("create pactree");
        let service = PacService::start(
            Arc::clone(&tree),
            ServiceConfig {
                shards: 2,
                numa_pin: false,
                ..ServiceConfig::named(&name, 2)
            },
        );
        let node = ClusterNode::start(service, &endpoints[i], map.clone()).expect("node");
        health.push(HealthServer::start(node.clone(), "127.0.0.1:0").expect("health"));
        servers.push(TcpServer::serve(node.clone(), listener).expect("serve"));
        nodes.push(node);
        trees.push(tree);
    }
    // The CI smoke job scrapes the live nodes (pacsrv-top --endpoints)
    // while the bench holds them open at the end (PACCLUSTER_HOLD_MS).
    let health_eps: Vec<String> = health.iter().map(|h| h.local_addr().to_string()).collect();
    println!("health endpoints: {}", health_eps.join(","));

    // Fleet plane: poll every health endpoint through the whole run. The
    // stuck-migration bound is wall clock in one non-idle phase;
    // PACSRV_STUCK_MIGRATION_MS lets the CI smoke job force a fire/clear
    // episode through a deliberately slowed migration.
    let stuck_bound_ns = std::env::var("PACSRV_STUCK_MIGRATION_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| ms * 1_000_000)
        .unwrap_or(DEFAULT_STUCK_MIGRATION_BOUND_NS);
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper_thread = std::thread::spawn({
        let stop = Arc::clone(&scrape_stop);
        let eps = health_eps.clone();
        move || {
            let mut scraper = FleetScraper::new(
                eps,
                FleetSloConfig {
                    p99_objective_ns: None,
                    stuck_migration_bound_ns: stuck_bound_ns,
                },
            );
            let mut polls = 0u64;
            while !stop.load(Ordering::Acquire) {
                scraper.poll(obsv::clock::now_ns());
                polls += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            scraper.poll(obsv::clock::now_ns());
            (polls + 1, scraper.take_events())
        }
    });

    // An optional hook slow-down (CI: guarantees the scraper observes a
    // non-idle migration phase and the stuck alert episode). Only the
    // bulk phase is stretched — it copies from a snapshot while clients
    // keep being served, so the p99-ratio gate is unaffected.
    if let Some(ms) = std::env::var("PACSRV_MIGRATION_SLOW_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|ms| *ms > 0)
    {
        nodes[0].set_migration_hook(move |phase| {
            if phase == pacsrv::cluster::PHASE_BULK {
                std::thread::sleep(Duration::from_millis(ms));
            }
        });
    }

    // Load: every id placed by the hot-partition model, 80% on partition 0.
    let hp = HotPartition::new(NODES as u64, HOT_PARTITION as u64, HOT_FRACTION);
    let mut loader = RouterClient::connect(&endpoints).expect("router");
    for chunk in (0..scale.keys).collect::<Vec<u64>>().chunks(128) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|id| Request::Put {
                key: hp.key(*id).to_be_bytes().to_vec(),
                value: *id,
            })
            .collect();
        for resp in loader.call(reqs).expect("load batch") {
            assert_eq!(resp, Response::Ok, "load put failed");
        }
    }

    // Measured traffic: closed-loop 80/20 get/put through per-thread
    // routers, each op tagged with the window it *started* in.
    let window = AtomicU8::new(WIN_STEADY);
    let errors = AtomicU64::new(0);
    let mut windows: Vec<Window> = Vec::new();
    let mut rebalance_ms = 0u64;
    let mut report_detail = String::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let (window, errors) = (&window, &errors);
            let endpoints = endpoints.clone();
            handles.push(s.spawn(move || {
                let mut router = RouterClient::connect(&endpoints).expect("router");
                let mut rng = StdRng::seed_from_u64(0xc1a5 ^ (c as u64).wrapping_mul(0x9E37));
                let mut lat: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                loop {
                    let win = window.load(Ordering::Acquire);
                    if win == WIN_STOP {
                        break;
                    }
                    let id = rng.gen_range(0..scale.keys.max(1));
                    let key = hp.key(id).to_be_bytes().to_vec();
                    let req = if rng.gen_range(0..100) < 80 {
                        Request::Get { key }
                    } else {
                        Request::Put { key, value: id }
                    };
                    let start = Instant::now();
                    match router.call(vec![req]) {
                        Ok(resps) if resps.iter().all(|r| r.executed()) => {
                            lat[win as usize].push(start.elapsed().as_micros() as u64);
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                (
                    lat,
                    router.refreshes(),
                    router.wrong_partition_seen(),
                    router.retried_reads(),
                )
            }));
        }

        // Steady window, then the migration (blocking: the Migrate frame
        // replies only once the whole state machine has run), then post.
        std::thread::sleep(Duration::from_millis(steady_ms));
        window.store(WIN_MIGRATION, Ordering::Release);
        let mut ctl = TcpClient::connect(endpoints[0].as_str()).expect("ctl");
        let mig_start = Instant::now();
        let (ok, detail) = ctl
            .migrate(MigrateOp::Start {
                partition: HOT_PARTITION,
                target: endpoints[1].clone(),
            })
            .expect("migrate rpc");
        rebalance_ms = mig_start.elapsed().as_millis() as u64;
        assert!(ok, "migration failed: {detail}");
        report_detail = detail;
        // Keep the migration window open a little past the flip so the
        // routers' WrongPartition-and-refresh hops are measured too.
        std::thread::sleep(Duration::from_millis(migration_extra_ms));
        window.store(WIN_POST, Ordering::Release);
        std::thread::sleep(Duration::from_millis(post_ms));
        window.store(WIN_STOP, Ordering::Release);

        let mut merged: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let (mut refreshes, mut wrong, mut retried) = (0u64, 0u64, 0u64);
        for h in handles {
            let (lat, r, w, rr) = h.join().expect("client panicked");
            for (m, l) in merged.iter_mut().zip(lat) {
                m.extend(l);
            }
            refreshes += r;
            wrong += w;
            retried += rr;
        }
        windows = vec![
            Window {
                label: "steady",
                lat_us: std::mem::take(&mut merged[0]),
            },
            Window {
                label: "migration",
                lat_us: std::mem::take(&mut merged[1]),
            },
            Window {
                label: "post",
                lat_us: std::mem::take(&mut merged[2]),
            },
        ];
        windows.push(Window {
            label: "",
            lat_us: vec![refreshes, wrong, retried],
        });
    });
    let counters = windows.pop().expect("router counters");
    let (refreshes, wrong_seen, retried) =
        (counters.lat_us[0], counters.lat_us[1], counters.lat_us[2]);

    scrape_stop.store(true, Ordering::Release);
    let (fleet_polls, fleet_events) = scraper_thread.join().expect("fleet scraper");

    // Convergence: every node must have installed epoch 2, and a freshly
    // refreshed router must complete a sweep with zero new bounces.
    for (i, node) in nodes.iter().enumerate() {
        assert_eq!(node.map_epoch(), 2, "node {i} never installed epoch 2");
    }
    loader.refresh_map().expect("refresh");
    assert_eq!(loader.map_epoch(), 2, "router never saw epoch 2");
    let wrong_before_sweep = loader.wrong_partition_seen();
    for chunk in (0..scale.keys.min(2_000)).collect::<Vec<u64>>().chunks(128) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|id| Request::Get {
                key: hp.key(*id).to_be_bytes().to_vec(),
            })
            .collect();
        loader.call(reqs).expect("sweep");
    }
    let sweep_bounces = loader.wrong_partition_seen() - wrong_before_sweep;
    let wrong_partition_total: Vec<u64> = nodes.iter().map(|n| n.wrong_partition_total()).collect();

    let moved_pairs = json_u64(&report_detail, "moved_pairs");
    let delta_pairs = json_u64(&report_detail, "delta_pairs");
    let seal_ms = json_u64(&report_detail, "seal_ms");
    let new_epoch = json_u64(&report_detail, "new_epoch");

    // Report.
    println!("-- client latency through the router (wall-clock us, {clients} clients)");
    row("window", &["ops".into(), "p50".into(), "p99".into()]);
    let mut p99 = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for (i, w) in windows.iter_mut().enumerate() {
        counts[i] = w.lat_us.len();
        let p50 = w.quantile(0.50);
        p99[i] = w.quantile(0.99);
        row(
            w.label,
            &[
                counts[i].to_string(),
                format!("{p50:.0}"),
                format!("{:.0}", p99[i]),
            ],
        );
    }
    let steady_p99 = p99[0].max(P99_FLOOR_US);
    let ratio = p99[1] / steady_p99;
    println!(
        "-- migration: rebalance {rebalance_ms} ms (seal {seal_ms} ms), \
         {moved_pairs} bulk + {delta_pairs} delta pairs, epoch -> {new_epoch}"
    );
    println!(
        "-- router: {refreshes} refreshes, {wrong_seen} WrongPartition bounces, \
         {retried} retried reads; post-refresh sweep bounces: {sweep_bounces}"
    );

    // Fleet gate: the p99 reconstructed through the wire (scrape ->
    // parse -> bucket merge) must match a direct in-process merge of the
    // registry's histograms within the documented reconstruction bound.
    let mut gate = FleetScraper::new(health_eps.clone(), FleetSloConfig::default());
    let fleet_view = gate.poll(obsv::clock::now_ns());
    let fleet_p99 = fleet_view.merged_total().quantile(0.99);
    let mut direct = HistSnapshot::empty();
    for set in obsv::registry::global().sample().hists.values() {
        direct.merge(&set.merged());
    }
    let direct_p99 = direct.quantile(0.99);
    let fleet_diff = (fleet_p99 as f64 - direct_p99 as f64).abs() / direct_p99.max(1) as f64;
    let fleet_ok = fleet_view.nodes == NODES && fleet_diff <= RELATIVE_ERROR_BOUND;
    println!(
        "-- fleet: {} node(s), {fleet_polls} polls, {} slo event(s); merged p99 {} ns \
         vs direct merge {} ns (diff {:.4} <= bound {RELATIVE_ERROR_BOUND})",
        fleet_view.nodes,
        fleet_events.len(),
        fleet_p99,
        direct_p99,
        fleet_diff
    );
    std::fs::create_dir_all("results").ok();
    if !fleet_events.is_empty() {
        let mut jsonl = fleet_events.join("\n");
        jsonl.push('\n');
        match std::fs::write("results/fleet_events.jsonl", jsonl) {
            Ok(()) => println!("wrote results/fleet_events.jsonl"),
            Err(e) => eprintln!("could not write results/fleet_events.jsonl: {e}"),
        }
    }
    let merged_page = obsv::fleet::render_fleet_prom(&fleet_view, &gate.statuses());
    match std::fs::write("results/fleet_merged.txt", merged_page) {
        Ok(()) => println!("wrote results/fleet_merged.txt"),
        Err(e) => eprintln!("could not write results/fleet_merged.txt: {e}"),
    }

    // Partition heat: frame-boundary op/byte counters summed across
    // nodes (ownership moved mid-run, so both owners contributed), batch
    // p99 from the busiest owner. The rebalance advisor must rediscover
    // the configured hot spot from the counters alone.
    let mut heat: Vec<(u64, u64, u64)> = vec![(0, 0, 0); NODES];
    let mut busiest_owner_ops: Vec<u64> = vec![0; NODES];
    for node in &nodes {
        for (pid, (ops, bytes, p99)) in node.partition_heat().into_iter().enumerate() {
            heat[pid].0 += ops;
            heat[pid].1 += bytes;
            if ops > busiest_owner_ops[pid] {
                busiest_owner_ops[pid] = ops;
                heat[pid].2 = p99;
            }
        }
    }
    let hottest = heat
        .iter()
        .enumerate()
        .max_by_key(|(_, (ops, _, _))| *ops)
        .map_or(0, |(i, _)| i);
    let advisor_ok = hottest == HOT_PARTITION as usize && heat[hottest].0 > 0;
    println!("-- partition heat (ops / bytes / batch p99 us, summed across nodes)");
    row(
        "partition",
        &["ops".into(), "bytes".into(), "p99 us".into()],
    );
    for (pid, (ops, bytes, p99)) in heat.iter().enumerate() {
        row(
            &format!("p{pid}"),
            &[
                ops.to_string(),
                bytes.to_string(),
                format!("{:.0}", *p99 as f64 / 1e3),
            ],
        );
    }
    println!(
        "-- rebalance-advisor: partition {hottest} is hottest ({} ops), expected {HOT_PARTITION}: {}",
        heat[hottest].0,
        if advisor_ok { "OK" } else { "WRONG" }
    );

    // Traced-cluster overhead (advisory): closed-loop gets through one
    // router, sampling off vs the default 1-in-64 — the steady-state cost
    // of leaving tracing on across the cluster.
    let overhead_pct = if obsv::trace::compiled() {
        let ab_ms = if quick { 250 } else { 500 };
        let mut ab_router = RouterClient::connect(&endpoints).expect("router");
        let mut measure = |ms: u64, seed: u64| -> u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let deadline = Instant::now() + Duration::from_millis(ms);
            let mut n = 0u64;
            while Instant::now() < deadline {
                let id = rng.gen_range(0..scale.keys.max(1));
                let ok = ab_router
                    .call(vec![Request::Get {
                        key: hp.key(id).to_be_bytes().to_vec(),
                    }])
                    .is_ok();
                n += u64::from(ok);
            }
            n
        };
        obsv::trace::set_trace_sample_shift(63); // effectively off
        measure(100, 0xabab); // warm both arms' connections
        let off_ops = measure(ab_ms, 0xc0de);
        obsv::trace::set_trace_sample_shift(obsv::trace::DEFAULT_TRACE_SAMPLE_SHIFT);
        let on_ops = measure(ab_ms, 0xc0df);
        let pct = (off_ops.saturating_sub(on_ops)) as f64 / off_ops.max(1) as f64 * 100.0;
        println!(
            "-- traced-cluster overhead: {off_ops} ops untraced vs {on_ops} at 1/{} \
             sampling in {ab_ms} ms: {pct:.1}% (advisory target <= 5%)",
            1u64 << obsv::trace::DEFAULT_TRACE_SAMPLE_SHIFT
        );
        Some(pct)
    } else {
        println!("-- traced-cluster overhead: tracing not compiled in, A/B skipped");
        None
    };

    let errors = errors.load(Ordering::Relaxed);
    let clean = new_epoch == 2
        && sweep_bounces == 0
        && errors == 0
        && counts.iter().all(|c| *c > 0)
        && ratio <= P99_RATIO_LIMIT
        && fleet_ok
        && advisor_ok;

    let json = format!(
        concat!(
            "{{\"schema\":\"paccluster_bench/v1\",\"stamp\":{},",
            "\"nodes\":{},\"partitions\":{},\"hot_partition\":{},\"hot_fraction\":{:.2},",
            "\"clients\":{},",
            "\"steady\":{{\"ops\":{},\"p50_us\":{:.1},\"p99_us\":{:.1}}},",
            "\"migration\":{{\"ops\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},",
            "\"rebalance_ms\":{},\"seal_ms\":{},\"moved_pairs\":{},\"delta_pairs\":{}}},",
            "\"post\":{{\"ops\":{},\"p50_us\":{:.1},\"p99_us\":{:.1}}},",
            "\"p99_ratio\":{:.4},\"p99_ratio_limit\":{:.1},\"p99_floor_us\":{:.1},",
            "\"router\":{{\"final_epoch\":{},\"refreshes\":{},\"wrong_partition_seen\":{},",
            "\"retried_reads\":{},\"sweep_bounces\":{}}},",
            "\"wrong_partition_total\":[{}],\"errors\":{},\"clean\":{}}}"
        ),
        stamp_json(&scale),
        NODES,
        NODES,
        HOT_PARTITION,
        HOT_FRACTION,
        clients,
        counts[0],
        windows[0].quantile(0.50),
        p99[0],
        counts[1],
        windows[1].quantile(0.50),
        p99[1],
        rebalance_ms,
        seal_ms,
        moved_pairs,
        delta_pairs,
        counts[2],
        windows[2].quantile(0.50),
        p99[2],
        ratio,
        P99_RATIO_LIMIT,
        P99_FLOOR_US,
        loader.map_epoch(),
        refreshes,
        wrong_seen,
        retried,
        sweep_bounces,
        wrong_partition_total
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(","),
        errors,
        clean,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/paccluster_bench.json", &json) {
        Ok(()) => println!("wrote results/paccluster_bench.json"),
        Err(e) => eprintln!("could not write results/paccluster_bench.json: {e}"),
    }

    let heat_json = format!(
        concat!(
            "{{\"schema\":\"fleet_heat/v1\",\"stamp\":{},\"hot_partition\":{},",
            "\"partitions\":[{}],",
            "\"advisor\":{{\"hottest\":{},\"expected\":{},\"ok\":{}}},",
            "\"fleet\":{{\"nodes\":{},\"p99_ns\":{},\"direct_p99_ns\":{},",
            "\"rel_error_bound\":{},\"polls\":{},\"events\":{}}},",
            "\"traced_overhead_pct\":{}}}"
        ),
        stamp_json(&scale),
        HOT_PARTITION,
        heat.iter()
            .enumerate()
            .map(|(pid, (ops, bytes, p99))| format!(
                "{{\"id\":{pid},\"ops\":{ops},\"bytes\":{bytes},\"p99_ns\":{p99}}}"
            ))
            .collect::<Vec<_>>()
            .join(","),
        hottest,
        HOT_PARTITION,
        advisor_ok,
        fleet_view.nodes,
        fleet_p99,
        direct_p99,
        RELATIVE_ERROR_BOUND,
        fleet_polls,
        fleet_events.len(),
        overhead_pct.map_or("null".to_string(), |p| format!("{p:.2}")),
    );
    match std::fs::write("results/fleet_heat.json", &heat_json) {
        Ok(()) => println!("wrote results/fleet_heat.json"),
        Err(e) => eprintln!("could not write results/fleet_heat.json: {e}"),
    }

    // Keep the cluster scrapeable for an external observer (the CI job
    // runs pacsrv-top --endpoints against it inside this window).
    if let Some(hold) = std::env::var("PACCLUSTER_HOLD_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|ms| *ms > 0)
    {
        println!("holding cluster open for {hold} ms");
        std::thread::sleep(Duration::from_millis(hold));
    }
    for h in health {
        h.stop();
    }
    for server in servers {
        server.stop();
    }
    for node in &nodes {
        node.service().shutdown(Duration::from_secs(10));
    }
    drop(nodes);
    for tree in trees {
        tree.destroy();
    }

    // The CI cluster-smoke job greps for this line.
    println!(
        "paccluster-bench: {} (epoch {new_epoch}, p99 ratio {ratio:.2}, \
         sweep bounces {sweep_bounces}, errors {errors})",
        if clean { "CLEAN" } else { "DIRTY" },
    );
    if !clean {
        std::process::exit(1);
    }
}
