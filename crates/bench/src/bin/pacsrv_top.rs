//! pacsrv-top: a terminal dashboard over a running pacsrv's health
//! endpoint.
//!
//! Polls the plain-TCP health listener ([`pacsrv::HealthServer`], the same
//! endpoint `curl` scrapes) at a fixed interval, parses the Prometheus
//! text exposition, and renders per-service liveness: throughput (from
//! completed-counter deltas between polls), queue depth, shed/timeout
//! rates, sojourn p50/p99, and any SLO alert states with their error-
//! budget burn rates.
//!
//! ```text
//! pacsrv-top --addr 127.0.0.1:9100            # live dashboard, 1s refresh
//! pacsrv-top --addr 127.0.0.1:9100 --once     # one scrape, plain print, exit
//! pacsrv-top --addr 127.0.0.1:9100 --interval-ms 250
//! pacsrv-top --endpoints 127.0.0.1:9100,127.0.0.1:9101   # whole cluster
//! ```
//!
//! `--endpoints` takes a comma-separated list of health addresses (one per
//! cluster node) and renders one per-service section per endpoint, plus a
//! cluster row (map epoch, owned partitions, migration phase) whenever the
//! node exports the `*_cluster_*` gauges. Multi-endpoint frames open with
//! a fleet header row: nodes answering, fleet-merged op count and exact
//! merged p50/p99 (via [`obsv::fleet`]'s lossless bucket merge), and how
//! many nodes are mid-migration.
//!
//! `--once` is the CI smoke mode: exit 0 iff every scrape parses and
//! carries at least one metric family. The single-address `--once` output
//! (`pacsrv-top: OK (N metrics from ADDR)`) is grepped by CI — keep it
//! stable.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed exposition: `name{labels}` -> value, comments dropped.
type Metrics = BTreeMap<String, f64>;

/// Fetches one endpoint's raw Prometheus text body.
fn fetch(addr: &str) -> Result<String, String> {
    let mut sock = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    sock.set_read_timeout(Some(Duration::from_secs(5))).ok();
    sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    sock.read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    if !reply.starts_with("HTTP/1.0 200") {
        return Err(format!(
            "non-200 reply: {}",
            reply.lines().next().unwrap_or("<empty>")
        ));
    }
    reply
        .split("\r\n\r\n")
        .nth(1)
        .map(str::to_string)
        .ok_or_else(|| "reply has no body".to_string())
}

/// Raw prom-text body plus the parsed metric map from one scrape.
type Scrape = Result<(String, Metrics), String>;

fn scrape(addr: &str) -> Scrape {
    let body = fetch(addr)?;
    let mut metrics = Metrics::new();
    for line in body.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        // `name{labels} value` or `name value`; the value is the text
        // after the last space (label values never contain raw spaces in
        // our exposition).
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(v) = value.trim().parse::<f64>() else {
            continue;
        };
        metrics.insert(key.trim().to_string(), v);
    }
    if metrics.is_empty() {
        return Err("scrape parsed to zero metrics".to_string());
    }
    Ok((body, metrics))
}

/// The fleet header row: all answering pages merged through
/// [`obsv::fleet`] — exact bucket-merged percentiles (duplicate
/// registries deduplicated, distinct nodes summed) and the count of
/// nodes currently mid-migration.
fn render_fleet(bodies: &[String]) {
    let scrapes: Vec<obsv::fleet::NodeScrape> = bodies
        .iter()
        .map(|b| obsv::fleet::parse_prom_text(b))
        .collect();
    let view = obsv::fleet::FleetView::from_scrapes(&scrapes);
    let total = view.merged_total();
    let migrating = view
        .migration_phases()
        .iter()
        .filter(|(_, phase)| *phase != 0.0)
        .count();
    println!(
        "{:<18} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "fleet", "nodes", "ops", "migr", "p50 us", "p99 us"
    );
    println!(
        "{:<18} {:>10} {:>8} {:>8} {:>9.1} {:>9.1}",
        "(merged)",
        view.nodes,
        total.count(),
        migrating,
        total.quantile(0.50) as f64 / 1e3,
        total.quantile(0.99) as f64 / 1e3,
    );
}

/// Service names, discovered as the prefixes of `*_queue_depth` gauges.
fn services(m: &Metrics) -> Vec<String> {
    m.keys()
        .filter_map(|k| k.strip_suffix("_queue_depth"))
        .map(|s| s.to_string())
        .collect()
}

fn get(m: &Metrics, key: &str) -> f64 {
    m.get(key).copied().unwrap_or(0.0)
}

/// The summary quantile `q` of `prefix`'s sojourn latency, preferring the
/// busiest op kind (most counted), in microseconds.
fn latency_us(m: &Metrics, prefix: &str, q: &str) -> Option<f64> {
    let count_prefix = format!("{prefix}_latency_ns_count{{op=\"");
    let busiest = m
        .iter()
        .filter(|(k, _)| k.starts_with(&count_prefix))
        .max_by(|a, b| a.1.total_cmp(b.1))?
        .0
        .trim_start_matches(&count_prefix)
        .trim_end_matches("\"}")
        .to_string();
    m.get(&format!(
        "{prefix}_latency_ns{{op=\"{busiest}\",quantile=\"{q}\"}}"
    ))
    .map(|ns| ns / 1e3)
}

/// Renders one dashboard frame from this poll and (for rates) the last.
fn render(now: &Metrics, last: Option<&(Metrics, std::time::Instant)>, poll_dt: Duration) {
    println!(
        "{:<18} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "service", "ops/s", "queue", "shed/s", "t/o-s/s", "p50 us", "p99 us"
    );
    for svc in services(now) {
        let (mut rate, mut shed_rate, mut timeout_rate) = (f64::NAN, f64::NAN, f64::NAN);
        if let Some((prev, at)) = last {
            let dt = at.elapsed().as_secs_f64().max(1e-9);
            let delta = |k: &str| (get(now, k) - get(prev, k)).max(0.0) / dt;
            rate = delta(&format!("{svc}_completed_total"));
            shed_rate = delta(&format!("{svc}_shed_total"));
            timeout_rate = delta(&format!("{svc}_timeout_total"));
        }
        let fmt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.0}")
            }
        };
        println!(
            "{:<18} {:>10} {:>8.0} {:>8} {:>8} {:>9} {:>9}",
            svc,
            fmt(rate),
            get(now, &format!("{svc}_queue_depth")),
            fmt(shed_rate),
            fmt(timeout_rate),
            latency_us(now, &svc, "0.5").map_or("-".into(), |v| format!("{v:.1}")),
            latency_us(now, &svc, "0.99").map_or("-".into(), |v| format!("{v:.1}")),
        );
    }
    // Cluster state, one row per service that exports the cluster gauges.
    let clustered: Vec<String> = services(now)
        .into_iter()
        .filter(|svc| now.contains_key(&format!("{svc}_cluster_map_epoch")))
        .collect();
    if !clustered.is_empty() {
        println!(
            "{:<18} {:>10} {:>8} {:>8} {:>9} {:>9}",
            "cluster", "epoch", "owned", "phase", "lag", "bounced"
        );
        for svc in clustered {
            let phase = match get(now, &format!("{svc}_cluster_migration_phase")) as u8 {
                0 => "idle",
                1 => "bulk",
                2 => "delta",
                3 => "seal",
                4 => "flip",
                _ => "?",
            };
            println!(
                "{:<18} {:>10.0} {:>8.0} {:>8} {:>9.0} {:>9.0}",
                svc,
                get(now, &format!("{svc}_cluster_map_epoch")),
                get(now, &format!("{svc}_cluster_partitions_owned")),
                phase,
                get(now, &format!("{svc}_cluster_migration_handoff_lag")),
                get(now, &format!("{svc}_cluster_wrong_partition_total")),
            );
        }
    }
    // SLO alert states, one row per objective.
    let slos: Vec<String> = now
        .keys()
        .filter_map(|k| k.strip_prefix("slo_firing{slo=\""))
        .map(|s| s.trim_end_matches("\"}").to_string())
        .collect();
    if !slos.is_empty() {
        println!(
            "{:<18} {:>10} {:>12} {:>12}",
            "slo", "state", "burn(fast)", "burn(slow)"
        );
        for slo in slos {
            let firing = get(now, &format!("slo_firing{{slo=\"{slo}\"}}")) > 0.5;
            println!(
                "{:<18} {:>10} {:>12.3} {:>12.3}",
                slo,
                if firing { "FIRING" } else { "ok" },
                get(
                    now,
                    &format!("slo_burn_rate{{slo=\"{slo}\",window=\"fast\"}}")
                ),
                get(
                    now,
                    &format!("slo_burn_rate{{slo=\"{slo}\",window=\"slow\"}}")
                ),
            );
        }
    }
    println!("{} metrics, next poll in {:?}", now.len(), poll_dt);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // `--endpoints a,b,c` scrapes a whole cluster; plain `--addr` stays
    // the single-node path with byte-stable `--once` output.
    let addrs: Vec<String> = match opt("--endpoints") {
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
        None => vec![opt("--addr").unwrap_or_else(|| "127.0.0.1:9100".to_string())],
    };
    if addrs.is_empty() {
        eprintln!("pacsrv-top: --endpoints parsed to an empty list");
        std::process::exit(1);
    }
    let once = flag("--once");
    let interval = Duration::from_millis(
        opt("--interval-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000),
    );

    if once {
        let mut pages: Vec<(String, String, Metrics)> = Vec::new();
        for addr in &addrs {
            match scrape(addr) {
                Ok((body, m)) => pages.push((addr.clone(), body, m)),
                Err(e) => {
                    eprintln!("pacsrv-top: scrape failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if addrs.len() > 1 {
            let bodies: Vec<String> = pages.iter().map(|(_, b, _)| b.clone()).collect();
            render_fleet(&bodies);
        }
        let mut total = 0usize;
        for (addr, _, m) in &pages {
            if addrs.len() > 1 {
                println!("== {addr}");
            }
            render(m, None, interval);
            total += m.len();
            println!("pacsrv-top: OK ({} metrics from {addr})", m.len());
        }
        if addrs.len() > 1 {
            println!(
                "pacsrv-top: OK ({total} metrics from {} endpoints)",
                addrs.len()
            );
        }
        return;
    }

    let mut last: Vec<Option<(Metrics, std::time::Instant)>> = vec![None; addrs.len()];
    let mut failures = 0u32;
    loop {
        // Scrape the whole fleet first so the merged header reflects the
        // same frame the per-endpoint sections render.
        let polled: Vec<(usize, Scrape)> = addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| (i, scrape(addr)))
            .collect();
        let bodies: Vec<String> = polled
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok().map(|(b, _)| b.clone()))
            .collect();
        let mut scraped = 0usize;
        let mut frame = String::new();
        for (i, result) in polled {
            let addr = &addrs[i];
            match result {
                Ok((_, m)) => {
                    scraped += 1;
                    // Clear screen + home, like top(1) — once per frame.
                    if scraped == 1 {
                        print!("\x1b[2J\x1b[H");
                        if addrs.len() > 1 {
                            render_fleet(&bodies);
                        }
                    }
                    println!("{frame}pacsrv-top — {addr}");
                    frame = String::new();
                    render(&m, last[i].as_ref(), interval);
                    last[i] = Some((m, std::time::Instant::now()));
                }
                Err(e) => {
                    frame.push_str(&format!("pacsrv-top — {addr}: scrape failed: {e}\n"));
                    last[i] = None;
                }
            }
        }
        if scraped == 0 {
            failures += 1;
            eprint!("{frame}");
            eprintln!("pacsrv-top: no endpoint answered ({failures})");
            if failures >= 5 {
                eprintln!("pacsrv-top: giving up after {failures} consecutive failures");
                std::process::exit(1);
            }
        } else {
            failures = 0;
            print!("{frame}");
        }
        std::thread::sleep(interval);
    }
}
