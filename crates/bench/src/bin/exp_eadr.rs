//! §3.5 extension: PAC guidelines in eADR mode.
//!
//! With persistent CPU caches, flush/fence latency leaves the critical path
//! — but NVM bandwidth remains the bottleneck, so the paper argues the PAC
//! guidelines still apply. We run the write-intensive YCSB-A with the ADR
//! and eADR models and compare both PACTree and FastFair: the ordering must
//! hold in both modes, with everyone faster under eADR.

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    banner("§3.5", "ADR vs eADR (YCSB-A, integer keys)", &scale);
    let threads = scale.max_threads().min(16);

    row(
        "index",
        &["ADR Mops/s".into(), "eADR Mops/s".into(), "speedup".into()],
    );
    for kind in [Kind::PacTree, Kind::FastFair, Kind::PdlArt] {
        let mut cols = Vec::new();
        let mut results = Vec::new();
        for eadr in [false, true] {
            let name = format!("eadr-{}-{}", kind.name(), eadr);
            let idx = AnyIndex::create(kind, &name, KeySpace::Integer, &scale);
            driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
            let cfg_model = if eadr {
                NvmModelConfig::optane_eadr_dilated(CoherenceMode::Snoop, scale.dilation)
            } else {
                NvmModelConfig::optane_dilated(CoherenceMode::Snoop, scale.dilation)
            };
            model::set_config(cfg_model);
            let w = Workload::zipfian(Mix::A, scale.keys);
            let cfg = DriverConfig {
                threads,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
            model::set_config(NvmModelConfig::disabled());
            results.push(r.mops);
            cols.push(mops(r.mops));
            idx.destroy();
        }
        cols.push(format!("{:.2}x", results[1] / results[0].max(1e-9)));
        row(kind.name(), &cols);
    }
    println!("-- expectation (§3.5): everyone gains from eADR; the PAC ordering is unchanged");
}
