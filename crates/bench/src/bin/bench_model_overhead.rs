//! Microbenchmark of the NVM model's own bookkeeping overhead.
//!
//! Every modeled access from every index funnels through
//! `pmem::model::{on_read, on_flush}`, so the model's internal
//! synchronization is a throughput ceiling for the whole benchmark suite.
//! This binary measures that ceiling directly: ns/op single-threaded and
//! aggregate Mops/s for a thread sweep, with the model in pure accounting
//! mode (no injected latency, no throttling — only the bookkeeping path).
//!
//! Reported numbers go to EXPERIMENTS.md ("model overhead" section). The
//! interesting comparison is multi-thread scaling: with lock-free sharded
//! bookkeeping the aggregate rate should grow near-linearly with threads
//! instead of plateauing on a global lock.
//!
//! Env knobs: `PAC_MODEL_OPS` (ops per thread per measurement, default 2M),
//! `PAC_THREADS` (max sweep point, default 8).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use pmem::model::{self, NvmModelConfig};
use pmem::pool::{destroy_pool, PmemPool, PoolConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

const POOL_SIZE: usize = 64 << 20;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured phase: every thread runs `ops` calls of `op`, returns
/// aggregate Mops/s.
fn run_phase(threads: usize, ops: u64, op: impl Fn(&mut StdRng, u64) + Sync) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let total_ns = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let total_ns = &total_ns;
            let op = &op;
            s.spawn(move || {
                pmem::numa::pin_thread(0);
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ t as u64);
                barrier.wait();
                let start = Instant::now();
                for i in 0..ops {
                    op(&mut rng, i);
                }
                total_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    // Aggregate rate: total ops / mean per-thread wall time.
    let mean_ns = total_ns.load(Ordering::Relaxed) as f64 / threads as f64;
    (threads as u64 * ops) as f64 * 1e3 / mean_ns
}

fn main() {
    let ops = env_u64("PAC_MODEL_OPS", 2_000_000);
    let max_threads = env_u64("PAC_THREADS", 8) as usize;
    let mut sweep = vec![1usize, 2, 4, 8, 16];
    sweep.retain(|&t| t <= max_threads);

    println!("== model overhead: on_read/on_flush bookkeeping cost (accounting mode)");
    println!("   {ops} ops/thread, threads {sweep:?}");

    let pool =
        PmemPool::create(PoolConfig::volatile("bench-model-ovh", POOL_SIZE)).expect("create pool");
    let id = pool.id();
    let span = (POOL_SIZE as u64 / 64) - 64; // offsets in cache lines

    model::set_config(NvmModelConfig::accounting());

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "op", "threads", "Mops/s", "ns/op", "scaling"
    );
    for (label, pattern) in [("on_read/rand", 0u8), ("on_flush/seq", 1u8), ("mixed", 2u8)] {
        let mut base = 0.0f64;
        for &t in &sweep {
            let mops = run_phase(t, ops, |rng, i| match pattern {
                0 => {
                    let off = rng.gen_range(0..span) * 64;
                    model::on_read(id, off, 64);
                }
                1 => {
                    // Sequential flushes: exercises the write-combining
                    // XPBuffer hit path.
                    let off = (i % span) * 64;
                    model::on_flush(id, off, 64);
                }
                _ => {
                    let off = rng.gen_range(0..span) * 64;
                    model::on_read(id, off, 64);
                    model::on_flush(id, off, 64);
                }
            });
            if t == 1 {
                base = mops;
            }
            println!(
                "{:<14} {:>10} {:>12.3} {:>12.1} {:>11.2}x",
                label,
                t,
                mops,
                1e3 / mops * t as f64, // aggregate ns per op across threads
                mops / base.max(1e-9),
            );
        }
    }

    model::set_config(NvmModelConfig::disabled());
    let snap = pmem::stats::global().snapshot();
    println!(
        "-- accounted: read {:.2} GiB, write {:.2} GiB, {} flushes",
        snap.read_gib(),
        snap.write_gib(),
        snap.flushes
    );
    destroy_pool(id);
}
