//! Figure 9: YCSB string keys (Zipfian), all workloads, thread sweep,
//! PACTree vs PDL-ART vs BzTree vs FastFair (FPTree has no string keys).
//!
//! Paper result: PACTree wins every workload — up to 4x on write-intensive
//! mixes (async SMOs off the critical path) and up to 3.2x on read-heavy
//! mixes (trie search layer saves NVM read bandwidth). FastFair drops ~3x
//! vs its integer-key numbers because string keys live out of node.

use bench::{banner, ycsb_comparison, Kind, Scale};
use pmem::model::{CoherenceMode, NvmModelConfig};
use ycsb::{Distribution, KeySpace};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    banner("Figure 9", "YCSB string keys, Zipfian", &scale);
    ycsb_comparison(
        "fig09",
        &Kind::string_capable(),
        KeySpace::String,
        &scale,
        Distribution::Zipfian(0.99),
        &|| NvmModelConfig::optane_dilated(CoherenceMode::Snoop, Scale::from_env().dilation),
    );
}
