//! trace-report: end-to-end request tracing demonstration and export.
//!
//! Two phases over one populated PACTree behind a `pacsrv` service:
//!
//! 1. **tail-sampled pass** — a closed-loop uniform mix submitted through
//!    [`PacService::submit`], which stamps contexts at the default 1-in-64
//!    trace sampling and default 1 ms keep threshold: only requests that
//!    end up slow (or errored) survive, demonstrating that steady-state
//!    traffic retains ~nothing;
//! 2. **forced-slow request** — one put traced with
//!    [`obsv::trace::stamp_forced`] while the NVM model injects large
//!    flush/fence/read latencies at dilation 1 (model ns == wall ns), so
//!    the retained trace's per-span stall attribution can be checked
//!    against the index-op span's wall duration.
//!
//! Writes `results/trace_chrome.json` (Chrome trace-event JSON, loadable
//! in Perfetto / `chrome://tracing`; schema `trace_chrome/v1`) and
//! `results/trace_summary.jsonl` (one `trace_summary/v1` object per
//! line), both checked by `scripts/validate_obsv_json.py`. `--quick`
//! shrinks the pass for the CI smoke job.

use std::time::Duration;

use bench::{banner, AnyIndex, Kind, Scale};
use obsv::trace::{self, RetainedTrace, SpanKind};
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use ycsb::{driver, KeySpace};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    assert!(
        trace::compiled(),
        "trace-report requires the `trace` feature (cargo run --features trace)"
    );
    pmem::numa::set_topology(1);
    let scale = if quick {
        Scale {
            keys: 5_000,
            ops: 4_000,
            threads: vec![2],
            dilation: 1.0,
            pool_size: 128 << 20,
        }
    } else {
        Scale::from_env()
    };
    banner(
        "trace-report",
        "tail-sampled tracing + forced-slow export",
        &scale,
    );
    let space = KeySpace::Integer;

    model::set_config(NvmModelConfig::disabled());
    let idx = AnyIndex::create(Kind::PacTree, "trace-report", space, &scale);
    driver::populate(&idx, space, scale.keys, 2);
    let svc = PacService::start(
        idx.clone(),
        ServiceConfig {
            shards: scale.max_threads().clamp(1, 4),
            numa_pin: false,
            ..ServiceConfig::named("trace-report", scale.max_threads().clamp(1, 4))
        },
    );

    // Phase 1: tail-sampled steady state. Contexts come from the default
    // stamp() path (1-in-2^6), retention from the default 1 ms threshold.
    trace::clear_retained();
    let mut rng = StdRng::seed_from_u64(0x7ace);
    let batch = 8usize;
    let mut submitted = 0u64;
    while submitted < scale.ops {
        let reqs: Vec<Request> = (0..batch)
            .map(|_| {
                let id = rng.gen_range(0..scale.keys);
                if rng.gen_range(0..100) < 5 {
                    Request::Put {
                        key: space.encode(id),
                        value: id,
                    }
                } else {
                    Request::Get {
                        key: space.encode(id),
                    }
                }
            })
            .collect();
        submitted += reqs.len() as u64;
        svc.submit(reqs, None).wait();
    }
    let steady = trace::take_retained();
    println!(
        "-- steady state: {} ops at 1/{} trace sampling, keep >{} us: {} trace(s) retained",
        submitted,
        1u64 << trace::trace_sample_shift(),
        trace::keep_threshold_ns() / 1000,
        steady.len()
    );

    // Phase 2: a forced-slow put. Injected NVM latencies at dilation 1
    // (model ns == wall ns) dominate the op, so the op span's stall
    // attribution should account for nearly all of its wall duration.
    let slow = NvmModelConfig {
        read_ns: 20_000,
        flush_ns: 120_000,
        fence_ns: 60_000,
        time_dilation: 1.0,
        ..NvmModelConfig::optane(CoherenceMode::Snoop)
    };
    model::set_config(slow);
    trace::set_keep_threshold_ns(0); // retain regardless of latency

    // Warm the per-thread model state (simulated CPU cache, runtime
    // snapshot) and the op's page-fault path before measuring: the first
    // ops after a config switch pay one-off costs that are not NVM stalls.
    for i in 0..8u64 {
        svc.submit(
            vec![Request::Put {
                key: space.encode(1 + i),
                value: i,
            }],
            None,
        )
        .wait();
    }

    // The attribution check compares injected-stall ns against the op
    // span's wall duration; on a busy single-core host one sample can be
    // polluted by multi-ms scheduler or hypervisor stalls that genuinely
    // are not NVM time. Sample a few times and keep the cleanest trace.
    let before = pmem::stats::global().snapshot();
    let mut forced: Option<RetainedTrace> = None;
    let mut best = (0u64, 0u64, f64::NEG_INFINITY); // (op_ns, stall_ns, coverage)
    for attempt in 0..3 {
        let ctx = trace::stamp_forced();
        let resps = svc
            .submit_traced(
                vec![Request::Put {
                    key: space.encode(1),
                    value: 0xF00D,
                }],
                None,
                ctx,
            )
            .wait();
        assert_eq!(resps, vec![Response::Ok]);
        let tr = trace::take_retained()
            .into_iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .expect("forced-slow trace retained at threshold 0");
        let op_ns: u64 = tr
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::IndexOp)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        let stall_ns: u64 = tr.stall_totals().iter().sum();
        let coverage = stall_ns as f64 / op_ns.max(1) as f64;
        println!(
            "   sample {attempt}: root {} us, index-op {} us, stall {} us ({:.1}% coverage)",
            tr.root_ns / 1000,
            op_ns / 1000,
            stall_ns / 1000,
            coverage * 100.0
        );
        if coverage > best.2 {
            best = (op_ns, stall_ns, coverage);
            forced = Some(tr);
        }
    }
    model::set_config(NvmModelConfig::disabled());
    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
    let delta = pmem::stats::global().snapshot().since(&before);
    println!(
        "   model charged: {} B read, {} B written, {} flushes, {} fences",
        delta.media_read_bytes, delta.media_write_bytes, delta.flushes, delta.fences
    );

    let forced = forced.expect("at least one forced sample");
    let (op_ns, stall_ns, coverage) = best;

    // Span-tree + stall self-check on the kept sample.
    println!(
        "-- forced slow: root {} us, index-op {} us, attributed stall {} us",
        forced.root_ns / 1000,
        op_ns / 1000,
        stall_ns / 1000
    );
    for (k, name) in trace::STALL_NAMES.iter().enumerate() {
        println!("   stall[{name}] = {} us", forced.stall_totals()[k] / 1000);
    }
    for kind in [
        SpanKind::Root,
        SpanKind::Admission,
        SpanKind::Queue,
        SpanKind::Batch,
        SpanKind::IndexOp,
    ] {
        assert!(
            forced.spans.iter().any(|s| s.kind == kind),
            "forced trace is missing a {} span: {forced:?}",
            kind.name()
        );
    }
    println!(
        "-- stall coverage of the index-op span: {:.1}% (target: within 10%)",
        coverage * 100.0
    );
    if (0.90..=1.02).contains(&coverage) {
        println!("-- verdict: PASS");
    } else {
        // Not a hard failure: the residue is host scheduling noise, which
        // correctly does NOT show up as NVM stall attribution.
        println!("-- verdict: WARN (unattributed wall time, likely host scheduling noise)");
    }

    // Exports: steady-state survivors + the forced trace.
    let mut all = steady;
    all.push(forced);
    std::fs::create_dir_all("results").expect("mkdir results");
    let chrome = trace::chrome_trace_json(&all);
    std::fs::write("results/trace_chrome.json", &chrome).expect("write chrome trace");
    let mut jsonl = String::new();
    for t in &all {
        jsonl.push_str(&trace::summary_json_line(t));
        jsonl.push('\n');
    }
    std::fs::write("results/trace_summary.jsonl", &jsonl).expect("write summary jsonl");
    println!(
        "-- wrote results/trace_chrome.json ({} traces, {} bytes) and results/trace_summary.jsonl",
        all.len(),
        chrome.len()
    );

    svc.shutdown(Duration::from_secs(10));
    idx.destroy();
}
