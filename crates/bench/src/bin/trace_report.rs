//! trace-report: end-to-end request tracing demonstration and export.
//!
//! Two phases over one populated PACTree behind a `pacsrv` service:
//!
//! 1. **tail-sampled pass** — a closed-loop uniform mix submitted through
//!    [`PacService::submit`], which stamps contexts at the default 1-in-64
//!    trace sampling and default 1 ms keep threshold: only requests that
//!    end up slow (or errored) survive, demonstrating that steady-state
//!    traffic retains ~nothing;
//! 2. **forced-slow request** — one put traced with
//!    [`obsv::trace::stamp_forced`] while the NVM model injects large
//!    flush/fence/read latencies at dilation 1 (model ns == wall ns), so
//!    the retained trace's per-span stall attribution can be checked
//!    against the index-op span's wall duration.
//!
//! Writes `results/trace_chrome.json` (Chrome trace-event JSON, loadable
//! in Perfetto / `chrome://tracing`; schema `trace_chrome/v1`) and
//! `results/trace_summary.jsonl` (one `trace_summary/v1` object per
//! line), both checked by `scripts/validate_obsv_json.py`. `--quick`
//! shrinks the pass for the CI smoke job.
//!
//! **`--cluster`** runs the cross-node stitching demonstration instead: a
//! 3-node in-process cluster with a deliberately slowed partition-0
//! migration, one forced-traced request fanning across the nodes while
//! the migration runs, and one forced-traced migration control call. Each
//! node's span dump is fetched over the wire (`Stats` frames), stitched
//! with [`obsv::trace::stitch`], checked (single root, at least two
//! endpoints and remote fragments, 90%+ root coverage, all four
//! migration phases), and exported to `results/trace_cluster_chrome.json`.
//! The CI fleet-obsv-smoke job greps the `trace-report: STITCHED OK` line.

use std::time::Duration;

use bench::{banner, AnyIndex, Kind, Scale};
use obsv::trace::{self, RetainedTrace, SpanKind};
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use ycsb::{driver, KeySpace};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    assert!(
        trace::compiled(),
        "trace-report requires the `trace` feature (cargo run --features trace)"
    );
    if std::env::args().any(|a| a == "--cluster") {
        return cluster::run();
    }
    pmem::numa::set_topology(1);
    let scale = if quick {
        Scale {
            keys: 5_000,
            ops: 4_000,
            threads: vec![2],
            dilation: 1.0,
            pool_size: 128 << 20,
        }
    } else {
        Scale::from_env()
    };
    banner(
        "trace-report",
        "tail-sampled tracing + forced-slow export",
        &scale,
    );
    let space = KeySpace::Integer;

    model::set_config(NvmModelConfig::disabled());
    let idx = AnyIndex::create(Kind::PacTree, "trace-report", space, &scale);
    driver::populate(&idx, space, scale.keys, 2);
    let svc = PacService::start(
        idx.clone(),
        ServiceConfig {
            shards: scale.max_threads().clamp(1, 4),
            numa_pin: false,
            ..ServiceConfig::named("trace-report", scale.max_threads().clamp(1, 4))
        },
    );

    // Phase 1: tail-sampled steady state. Contexts come from the default
    // stamp() path (1-in-2^6), retention from the default 1 ms threshold.
    trace::clear_retained();
    let mut rng = StdRng::seed_from_u64(0x7ace);
    let batch = 8usize;
    let mut submitted = 0u64;
    while submitted < scale.ops {
        let reqs: Vec<Request> = (0..batch)
            .map(|_| {
                let id = rng.gen_range(0..scale.keys);
                if rng.gen_range(0..100) < 5 {
                    Request::Put {
                        key: space.encode(id),
                        value: id,
                    }
                } else {
                    Request::Get {
                        key: space.encode(id),
                    }
                }
            })
            .collect();
        submitted += reqs.len() as u64;
        svc.submit(reqs, None).wait();
    }
    let steady = trace::take_retained();
    println!(
        "-- steady state: {} ops at 1/{} trace sampling, keep >{} us: {} trace(s) retained",
        submitted,
        1u64 << trace::trace_sample_shift(),
        trace::keep_threshold_ns() / 1000,
        steady.len()
    );

    // Phase 2: a forced-slow put. Injected NVM latencies at dilation 1
    // (model ns == wall ns) dominate the op, so the op span's stall
    // attribution should account for nearly all of its wall duration.
    let slow = NvmModelConfig {
        read_ns: 20_000,
        flush_ns: 120_000,
        fence_ns: 60_000,
        time_dilation: 1.0,
        ..NvmModelConfig::optane(CoherenceMode::Snoop)
    };
    model::set_config(slow);
    trace::set_keep_threshold_ns(0); // retain regardless of latency

    // Warm the per-thread model state (simulated CPU cache, runtime
    // snapshot) and the op's page-fault path before measuring: the first
    // ops after a config switch pay one-off costs that are not NVM stalls.
    for i in 0..8u64 {
        svc.submit(
            vec![Request::Put {
                key: space.encode(1 + i),
                value: i,
            }],
            None,
        )
        .wait();
    }

    // The attribution check compares injected-stall ns against the op
    // span's wall duration; on a busy single-core host one sample can be
    // polluted by multi-ms scheduler or hypervisor stalls that genuinely
    // are not NVM time. Sample a few times and keep the cleanest trace.
    let before = pmem::stats::global().snapshot();
    let mut forced: Option<RetainedTrace> = None;
    let mut best = (0u64, 0u64, f64::NEG_INFINITY); // (op_ns, stall_ns, coverage)
    for attempt in 0..3 {
        let ctx = trace::stamp_forced();
        let resps = svc
            .submit_traced(
                vec![Request::Put {
                    key: space.encode(1),
                    value: 0xF00D,
                }],
                None,
                ctx,
            )
            .wait();
        assert_eq!(resps, vec![Response::Ok]);
        let tr = trace::take_retained()
            .into_iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .expect("forced-slow trace retained at threshold 0");
        let op_ns: u64 = tr
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::IndexOp)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        let stall_ns: u64 = tr.stall_totals().iter().sum();
        let coverage = stall_ns as f64 / op_ns.max(1) as f64;
        println!(
            "   sample {attempt}: root {} us, index-op {} us, stall {} us ({:.1}% coverage)",
            tr.root_ns / 1000,
            op_ns / 1000,
            stall_ns / 1000,
            coverage * 100.0
        );
        if coverage > best.2 {
            best = (op_ns, stall_ns, coverage);
            forced = Some(tr);
        }
    }
    model::set_config(NvmModelConfig::disabled());
    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
    let delta = pmem::stats::global().snapshot().since(&before);
    println!(
        "   model charged: {} B read, {} B written, {} flushes, {} fences",
        delta.media_read_bytes, delta.media_write_bytes, delta.flushes, delta.fences
    );

    let forced = forced.expect("at least one forced sample");
    let (op_ns, stall_ns, coverage) = best;

    // Span-tree + stall self-check on the kept sample.
    println!(
        "-- forced slow: root {} us, index-op {} us, attributed stall {} us",
        forced.root_ns / 1000,
        op_ns / 1000,
        stall_ns / 1000
    );
    for (k, name) in trace::STALL_NAMES.iter().enumerate() {
        println!("   stall[{name}] = {} us", forced.stall_totals()[k] / 1000);
    }
    for kind in [
        SpanKind::Root,
        SpanKind::Admission,
        SpanKind::Queue,
        SpanKind::Batch,
        SpanKind::IndexOp,
    ] {
        assert!(
            forced.spans.iter().any(|s| s.kind == kind),
            "forced trace is missing a {} span: {forced:?}",
            kind.name()
        );
    }
    println!(
        "-- stall coverage of the index-op span: {:.1}% (target: within 10%)",
        coverage * 100.0
    );
    if (0.90..=1.02).contains(&coverage) {
        println!("-- verdict: PASS");
    } else {
        // Not a hard failure: the residue is host scheduling noise, which
        // correctly does NOT show up as NVM stall attribution.
        println!("-- verdict: WARN (unattributed wall time, likely host scheduling noise)");
    }

    // Exports: steady-state survivors + the forced trace.
    let mut all = steady;
    all.push(forced);
    std::fs::create_dir_all("results").expect("mkdir results");
    let chrome = trace::chrome_trace_json(&all);
    std::fs::write("results/trace_chrome.json", &chrome).expect("write chrome trace");
    let mut jsonl = String::new();
    for t in &all {
        jsonl.push_str(&trace::summary_json_line(t));
        jsonl.push('\n');
    }
    std::fs::write("results/trace_summary.jsonl", &jsonl).expect("write summary jsonl");
    println!(
        "-- wrote results/trace_chrome.json ({} traces, {} bytes) and results/trace_summary.jsonl",
        all.len(),
        chrome.len()
    );

    svc.shutdown(Duration::from_secs(10));
    idx.destroy();
}

/// The `--cluster` mode: cross-node trace stitching against a live
/// 3-node cluster with a slowed migration in flight.
mod cluster {
    use super::*;
    use std::collections::BTreeSet;
    use std::net::TcpListener;
    use std::sync::Arc;

    use obsv::trace::{SpanRecord, TraceOutcome};
    use pacsrv::cluster::{
        ClusterNode, RouterClient, PHASE_BULK, PHASE_DELTA, PHASE_FLIP, PHASE_SEAL,
    };
    use pacsrv::wire::{MigrateOp, PartitionMap};
    use pacsrv::{TcpClient, TcpServer};

    const NODES: usize = 3;

    /// A key anywhere in the u64 key space (uniform over partitions).
    fn spread_key(i: u64) -> Vec<u8> {
        i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes().to_vec()
    }

    /// A key in the first third of the u64 key space (partition 0 of 3).
    fn p0_key(i: u64) -> Vec<u8> {
        (i % (u64::MAX / 3)).to_be_bytes().to_vec()
    }

    /// Fetches every node's span dump over its wire stats endpoint and
    /// keeps only `trace_id`'s spans.
    fn fetch_parts(endpoints: &[String], trace_id: u64) -> Vec<Vec<SpanRecord>> {
        endpoints
            .iter()
            .map(|ep| {
                let mut c = TcpClient::connect(ep).expect("stats conn");
                let stats = c.stats().expect("stats");
                trace::parse_span_dump(&stats)
                    .into_iter()
                    .filter(|s| s.trace_id == trace_id)
                    .collect()
            })
            .collect()
    }

    /// Fraction of the root's wall time covered by the union of its
    /// direct children's intervals.
    fn root_coverage(tr: &RetainedTrace) -> f64 {
        let root = &tr.spans[0];
        let mut ivals: Vec<(u64, u64)> = tr
            .spans
            .iter()
            .filter(|s| s.parent == root.span_id && s.span_id != root.span_id)
            .map(|s| (s.start_ns.max(root.start_ns), s.end_ns.min(root.end_ns)))
            .filter(|(a, b)| a < b)
            .collect();
        ivals.sort_unstable();
        let (mut covered, mut cursor) = (0u64, root.start_ns);
        for (a, b) in ivals {
            let a = a.max(cursor);
            if b > a {
                covered += b - a;
                cursor = b;
            }
        }
        if tr.root_ns == 0 {
            1.0
        } else {
            covered as f64 / tr.root_ns as f64
        }
    }

    pub fn run() {
        let scale = Scale {
            keys: 4_000,
            ops: 0,
            threads: vec![2],
            dilation: 1.0,
            pool_size: 96 << 20,
        };
        banner(
            "trace-report",
            "--cluster: cross-node stitching through a live migration",
            &scale,
        );
        pmem::numa::set_topology(1);
        model::set_config(NvmModelConfig::disabled());
        trace::set_keep_threshold_ns(0);
        trace::clear_retained();

        // Bind listeners first so the map can name real endpoints.
        let listeners: Vec<TcpListener> = (0..NODES)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let endpoints: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect();
        let map = PartitionMap::split_u64(&endpoints);
        println!("cluster endpoints: {}", endpoints.join(","));

        let mut nodes: Vec<Arc<ClusterNode<AnyIndex>>> = Vec::new();
        let mut servers: Vec<TcpServer> = Vec::new();
        let mut indexes = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let name = format!("trace-cluster-{i}");
            let idx = AnyIndex::create(Kind::PacTree, &name, KeySpace::Integer, &scale);
            let service = PacService::start(
                idx.clone(),
                ServiceConfig {
                    shards: 2,
                    numa_pin: false,
                    ..ServiceConfig::named(&name, 2)
                },
            );
            let node =
                ClusterNode::start(service, &endpoints[i], map.clone()).expect("cluster node");
            servers.push(TcpServer::serve(node.clone(), listener).expect("serve"));
            nodes.push(node);
            indexes.push(idx);
        }

        // Preload partition 0 (migration payload) plus a uniform spread.
        let mut router = RouterClient::connect(&endpoints[..1]).expect("router");
        for chunk in (0..scale.keys).collect::<Vec<u64>>().chunks(128) {
            let reqs: Vec<Request> = chunk
                .iter()
                .map(|i| Request::Put {
                    key: if i % 2 == 0 {
                        p0_key(*i)
                    } else {
                        spread_key(*i)
                    },
                    value: *i,
                })
                .collect();
            for r in router.call(reqs).expect("preload") {
                assert_eq!(r, Response::Ok);
            }
        }

        // Slow every migration phase transition so the traced fan-out
        // demonstrably overlaps the migration window.
        nodes[0].set_migration_hook(|_phase| std::thread::sleep(Duration::from_millis(1)));

        // Traced migration: forward a forced ctx to the source node
        // (ordinal 1) and mint the controller-side root when Start
        // returns — the node's phase spans land under it as a remote
        // fragment.
        let mig_target = endpoints[1].clone();
        let mig_ep = endpoints[0].clone();
        let mig = std::thread::spawn(move || {
            let mut ctl = TcpClient::connect(&mig_ep).expect("ctl conn");
            let mctx = trace::stamp_forced();
            ctl.set_trace(mctx.forwarded_to(1));
            let t0 = obsv::clock::now_ns();
            let (ok, detail) = ctl
                .migrate(MigrateOp::Start {
                    partition: 0,
                    target: mig_target,
                })
                .expect("migrate rpc");
            trace::finish_root(mctx, t0, TraceOutcome::Ok);
            (ok, detail, mctx.trace_id)
        });

        // One traced request fanning across all partitions mid-migration.
        let rctx = trace::stamp_forced();
        router.set_trace(rctx);
        let reqs: Vec<Request> = (0..48)
            .map(|i| Request::Put {
                key: spread_key(1_000_000 + i),
                value: i,
            })
            .collect();
        let resps = router.call(reqs).expect("traced fan-out");
        assert!(resps.iter().all(|r| *r == Response::Ok), "{resps:?}");
        let (mig_ok, mig_detail, mig_trace_id) = mig.join().expect("migration thread");
        assert!(mig_ok, "migration failed: {mig_detail}");

        // Stitch both traces from the per-node wire dumps.
        let parts = fetch_parts(&endpoints, rctx.trace_id);
        for (ep, p) in endpoints.iter().zip(&parts) {
            println!("   node {ep}: {} span(s) for the request trace", p.len());
        }
        let tree = trace::stitch(rctx.trace_id, &parts).expect("stitch request trace");
        let rpc_eps: BTreeSet<u32> = tree
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::RpcCall)
            .map(|s| s.detail)
            .collect();
        let remote_nodes: BTreeSet<u32> = tree
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Remote)
            .map(|s| s.detail)
            .collect();
        let coverage = root_coverage(&tree);
        println!(
            "-- request trace {}: {} spans, rpc endpoints {:?}, remote fragments {:?}, \
             root coverage {:.1}%",
            tree.trace_id,
            tree.spans.len(),
            rpc_eps,
            remote_nodes,
            coverage * 100.0
        );
        assert_eq!(tree.spans[0].kind, SpanKind::Root, "router owns the root");
        assert!(rpc_eps.len() >= 2, "fan-out named {rpc_eps:?}");
        assert!(remote_nodes.len() >= 2, "fragments from {remote_nodes:?}");
        assert!(coverage >= 0.90, "root coverage {coverage:.3} < 0.90");

        let mparts = fetch_parts(&endpoints, mig_trace_id);
        let mtree = trace::stitch(mig_trace_id, &mparts).expect("stitch migration trace");
        let phases: BTreeSet<u32> = mtree
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::MigratePhase)
            .map(|s| s.detail)
            .collect();
        println!(
            "-- migration trace {}: {} spans, phases {:?}",
            mtree.trace_id,
            mtree.spans.len(),
            phases
        );
        for want in [PHASE_BULK, PHASE_DELTA, PHASE_SEAL, PHASE_FLIP] {
            assert!(
                phases.contains(&(want as u32)),
                "migration phase {want} missing from {phases:?}"
            );
        }

        std::fs::create_dir_all("results").expect("mkdir results");
        let chrome = trace::chrome_trace_json(&[tree, mtree]);
        std::fs::write("results/trace_cluster_chrome.json", &chrome)
            .expect("write cluster chrome trace");
        println!(
            "-- wrote results/trace_cluster_chrome.json (2 stitched traces, {} bytes)",
            chrome.len()
        );

        trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
        for s in servers {
            s.stop();
        }
        for n in &nodes {
            n.service().shutdown(Duration::from_secs(10));
        }
        drop(nodes);
        for idx in indexes {
            idx.destroy();
        }
        // The CI fleet-obsv-smoke job greps for this line.
        println!(
            "trace-report: STITCHED OK (nodes {NODES}, endpoints {}, remotes {}, \
             coverage {:.1}%, phases 4)",
            rpc_eps.len(),
            remote_nodes.len(),
            coverage * 100.0
        );
    }
}
