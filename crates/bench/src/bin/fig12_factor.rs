//! Figure 12: factor analysis of the PACTree design — start from PDL-ART
//! and add one design feature at a time.
//!
//! Paper ladder: ART(SC) → +Per-NUMA pool → +Slotted leaf → +Selective
//! persistence → +Async update → (reference) DRAM search layer. Our ladder
//! introduces the slotted data layer first (it is what separates PDL-ART
//! from PACTree structurally), then per-NUMA pools, selective persistence,
//! async updates, and the DRAM search layer — the same factors, measured
//! cumulatively.
//!
//! Paper result: per-NUMA pools ~2x on writes; slotted leaves ~2.5x
//! everywhere except read-only C (slight dip); selective persistence +11%
//! on scans; async update +30% on writes; DRAM search layer <10%.

use bench::{banner, mops, row, Scale};
use pactree::{PacTree, PacTreeConfig};
use pdl_art::{PdlArt, PdlArtConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, RangeIndex, Workload};

fn run_step(
    label: &str,
    idx: &(impl RangeIndex + Clone + 'static),
    scale: &Scale,
    threads: usize,
    results: &mut Vec<(String, Vec<f64>)>,
) {
    let mut series = Vec::new();
    for mix in Mix::all() {
        model::set_config(NvmModelConfig::optane_dilated(
            CoherenceMode::Snoop,
            scale.dilation,
        ));
        let w = Workload::zipfian(mix, scale.keys);
        let cfg = DriverConfig {
            threads,
            ops: scale.ops / 2,
            dilation: scale.dilation,
            ..Default::default()
        };
        let r = driver::run_workload(idx, &w, KeySpace::String, &cfg);
        model::set_config(NvmModelConfig::disabled());
        series.push(r.mops);
    }
    results.push((label.to_string(), series));
}

fn pactree_step(
    label: &str,
    cfg: PacTreeConfig,
    scale: &Scale,
    threads: usize,
    results: &mut Vec<(String, Vec<f64>)>,
) {
    let tree = PacTree::create(cfg).expect("create");
    driver::populate(&tree, KeySpace::String, scale.keys, 4);
    run_step(label, &tree, scale, threads, results);
    tree.destroy();
}

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    let threads = scale.max_threads().min(28);
    banner(
        "Figure 12",
        "factor analysis (Zipfian string keys, cumulative design features)",
        &scale,
    );

    let mut results: Vec<(String, Vec<f64>)> = Vec::new();

    // Rung 0: ART(SC) — PDL-ART itself (kv pairs out of node, everything
    // synchronous, single pool).
    {
        let idx =
            PdlArt::create(PdlArtConfig::named("fig12-artsc").with_pool_size(scale.pool_size))
                .expect("create");
        driver::populate(&idx, KeySpace::String, scale.keys, 4);
        run_step("ART(SC)", &idx, &scale, threads, &mut results);
        idx.destroy();
    }

    let base = PacTreeConfig::named("fig12-slotted")
        .with_pool_size(scale.pool_size)
        .with_numa_pools(1)
        .with_async_smo(false);

    // Rung 1: +Slotted leaf (PACTree data layer, sync SMOs, 1 pool,
    // permutation persisted).
    let mut cfg = base.clone();
    cfg.persist_permutation = true;
    pactree_step("+Slotted Leaf", cfg, &scale, threads, &mut results);

    // Rung 2: +Per-NUMA pools.
    let mut cfg = base.clone();
    cfg.name = "fig12-numa".into();
    cfg.persist_permutation = true;
    cfg.numa_pools = 2;
    pactree_step("+Per-NUMA Pool", cfg, &scale, threads, &mut results);

    // Rung 3: +Selective persistence (stop persisting the permutation).
    let mut cfg = base.clone();
    cfg.name = "fig12-selpersist".into();
    cfg.numa_pools = 2;
    cfg.persist_permutation = false;
    pactree_step("+Selective Persist", cfg, &scale, threads, &mut results);

    // Rung 4: +Asynchronous search-layer update (full PACTree).
    let mut cfg = base.clone();
    cfg.name = "fig12-async".into();
    cfg.numa_pools = 2;
    cfg.persist_permutation = false;
    cfg.async_smo = true;
    pactree_step("+Async Update", cfg, &scale, threads, &mut results);

    // Reference: DRAM search layer.
    let mut cfg = base.clone();
    cfg.name = "fig12-dram".into();
    cfg.numa_pools = 2;
    cfg.persist_permutation = false;
    cfg.async_smo = true;
    cfg.search_layer_dram = true;
    pactree_step("DRAM Search Layer", cfg, &scale, threads, &mut results);

    row(
        "configuration",
        &Mix::all()
            .iter()
            .map(|m| m.short_name().to_string())
            .collect::<Vec<_>>(),
    );
    for (label, series) in &results {
        row(label, &series.iter().map(|&v| mops(v)).collect::<Vec<_>>());
    }
}
