//! pacsrv-bench: service-mode vs embedded YCSB, closed and open loop.
//!
//! Three measured phases over one populated PACTree:
//!
//! 1. **embedded** — the plain library path: `ycsb::driver` drives the
//!    index from T threads (the baseline every other figure uses);
//! 2. **service closed-loop** — the same mix through a `pacsrv` service
//!    with T shard workers, T clients submitting batches over the
//!    zero-copy in-process transport and waiting for each reply set; the
//!    headline is the service/embedded throughput ratio (target >= 0.70)
//!    plus the service-side sojourn percentiles (p50/p99/p999);
//! 3. **service open-loop at 2x** — paced submission at twice the
//!    closed-loop rate with a per-op deadline: demonstrates admission
//!    control (explicit `Overloaded` sheds, `DeadlineExceeded` drops,
//!    bounded queues) instead of queue collapse.
//!
//! Writes `results/pacsrv_bench.json` (schema `pacsrv_bench/v1`, stamped
//! with git commit + configuration). `--quick` shrinks everything for the
//! CI smoke job and skips nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{banner, mops, row, stamp_json, AnyIndex, Kind, Scale};
use obsv::OpKind;
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ycsb::workload::Op;
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn to_request(op: Op, space: KeySpace, rng_value: u64) -> Request {
    match op {
        Op::Read(id) => Request::Get {
            key: space.encode(id),
        },
        Op::Insert(id) => Request::Put {
            key: space.encode(id),
            value: id,
        },
        Op::Update(id) => Request::Put {
            key: space.encode(id),
            value: rng_value,
        },
        Op::Scan(id, len) => Request::Scan {
            start: space.encode(id),
            count: len as u32,
        },
    }
}

struct LoopOutcome {
    ok: u64,
    shed: u64,
    timeout: u64,
    /// Model-time seconds.
    seconds: f64,
}

impl LoopOutcome {
    fn mops(&self) -> f64 {
        self.ok as f64 / self.seconds / 1e6
    }
    fn rate(&self, n: u64) -> f64 {
        let total = self.ok + self.shed + self.timeout;
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }
}

fn tally(resp: Response, ok: &AtomicU64, shed: &AtomicU64, timeout: &AtomicU64) {
    match resp {
        Response::Overloaded | Response::Aborted => shed.fetch_add(1, Ordering::Relaxed),
        Response::DeadlineExceeded => timeout.fetch_add(1, Ordering::Relaxed),
        _ => ok.fetch_add(1, Ordering::Relaxed),
    };
}

/// One client-side load configuration for [`drive_service`].
struct Drive {
    total_ops: u64,
    clients: usize,
    batch: usize,
    /// Per-client pacing rate for the open loop; 0 means closed loop
    /// (wait for each reply set before submitting the next batch).
    pace_ops_per_sec: f64,
    deadline: Option<Duration>,
    dilation: f64,
}

/// Runs `d.total_ops` of `workload` through the service from `d.clients`
/// threads.
fn drive_service(
    service: &Arc<PacService<AnyIndex>>,
    workload: &Workload,
    space: KeySpace,
    d: &Drive,
) -> LoopOutcome {
    let Drive {
        total_ops,
        clients,
        batch,
        pace_ops_per_sec,
        deadline,
        dilation,
    } = *d;
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let timeout = AtomicU64::new(0);
    let per_client = total_ops / clients as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (ok, shed, timeout) = (&ok, &shed, &timeout);
            let workload = workload.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xbeef ^ (c as u64).wrapping_mul(0x9E37));
                let mut next_insert =
                    workload.populated + (c as u64 + 1) * (u64::MAX / 4 / clients as u64);
                let client_start = Instant::now();
                let mut open_pending = Vec::new();
                let mut issued = 0u64;
                while issued < per_client {
                    let n = (batch as u64).min(per_client - issued) as usize;
                    let reqs: Vec<Request> = (0..n)
                        .map(|i| {
                            let op = workload.next_op(&mut rng, &mut || {
                                next_insert += 1;
                                next_insert
                            });
                            to_request(op, space, issued + i as u64)
                        })
                        .collect();
                    issued += n as u64;
                    let rs = service.submit(reqs, deadline);
                    if pace_ops_per_sec > 0.0 {
                        open_pending.push(rs);
                        // Pace to the target rate; drain finished sets
                        // opportunistically to bound memory. Every drained
                        // set is tallied — dropping completed sets uncounted
                        // would bias the sample toward slow batches (shed
                        // batches complete instantly and would vanish).
                        let due = Duration::from_secs_f64(issued as f64 / pace_ops_per_sec);
                        if let Some(sleep) = due.checked_sub(client_start.elapsed()) {
                            std::thread::sleep(sleep);
                        }
                        if open_pending.len() >= 64 {
                            for rs in std::mem::take(&mut open_pending) {
                                if rs.is_done() {
                                    for resp in rs.wait() {
                                        tally(resp, ok, shed, timeout);
                                    }
                                } else {
                                    open_pending.push(rs);
                                }
                            }
                        }
                    } else {
                        for resp in rs.wait() {
                            tally(resp, ok, shed, timeout);
                        }
                    }
                }
                for rs in open_pending {
                    for resp in rs.wait() {
                        tally(resp, ok, shed, timeout);
                    }
                }
            });
        }
    });
    LoopOutcome {
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        timeout: timeout.load(Ordering::Relaxed),
        seconds: start.elapsed().as_secs_f64() / dilation.max(1.0),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    pmem::numa::set_topology(2);
    let scale = if quick {
        Scale {
            keys: 8_000,
            ops: 8_000,
            threads: vec![4],
            dilation: 32.0,
            pool_size: 256 << 20,
        }
    } else {
        Scale::from_env()
    };
    let threads = scale.max_threads().min(56);
    banner("pacsrv-bench", "service mode vs embedded (YCSB-B)", &scale);

    // Wall ns -> model-time µs for histogram reporting.
    let us = 1e-3 / scale.dilation.max(1.0);
    let space = KeySpace::Integer;
    let mix = Mix::B;

    let idx = AnyIndex::create(Kind::PacTree, "pacsrv-bench", space, &scale);
    driver::populate(&idx, space, scale.keys, 4);
    let workload = Workload::zipfian(mix, scale.keys);

    // Phase 1: embedded baseline.
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let embedded = driver::run_workload(
        &idx,
        &workload,
        space,
        &DriverConfig {
            threads,
            ops: scale.ops,
            dilation: scale.dilation,
            ..Default::default()
        },
    );
    model::set_config(NvmModelConfig::disabled());

    // Phase 2: the same mix through the service, closed loop.
    let cfg = ServiceConfig {
        shards: threads,
        queue_capacity: 1024,
        batch_max: 32,
        ..ServiceConfig::named("pacsrv-bench", threads)
    };
    let service = PacService::start(idx.clone(), cfg);
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let closed = drive_service(
        &service,
        &workload,
        space,
        &Drive {
            total_ops: scale.ops,
            clients: threads,
            batch: 16,
            pace_ops_per_sec: 0.0,
            deadline: None,
            dilation: scale.dilation,
        },
    );
    model::set_config(NvmModelConfig::disabled());
    let sojourn = service.metrics().ops.snapshot();
    let ratio = closed.mops() / embedded.mops.max(1e-12);

    // Phase 3: open loop at 2x the closed-loop rate, with a deadline.
    let closed_wall_rate = closed.ok as f64 / (closed.seconds * scale.dilation.max(1.0));
    let per_client_rate = 2.0 * closed_wall_rate / threads as f64;
    let deadline = Duration::from_millis(if quick { 200 } else { 500 });
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let open = drive_service(
        &service,
        &workload,
        space,
        &Drive {
            total_ops: scale.ops,
            clients: threads,
            batch: 16,
            pace_ops_per_sec: per_client_rate,
            deadline: Some(deadline),
            dilation: scale.dilation,
        },
    );
    model::set_config(NvmModelConfig::disabled());

    let drained = service.shutdown(Duration::from_secs(30));

    // Report.
    println!("-- throughput (model-time Mops/s, W-B zipfian, t={threads})");
    row("mode", &["Mops".into(), "ratio".into()]);
    row("embedded", &[mops(embedded.mops), "1.000".into()]);
    row(
        "service closed-loop",
        &[mops(closed.mops()), format!("{ratio:.3}")],
    );
    println!("-- service sojourn latency (model-time µs, admission -> completion)");
    row(
        "op",
        &["count".into(), "p50".into(), "p99".into(), "p99.9".into()],
    );
    for kind in OpKind::ALL {
        let h = sojourn.get(kind);
        if h.count() == 0 {
            continue;
        }
        row(
            kind.name(),
            &[
                h.count().to_string(),
                format!("{:.1}", h.quantile(0.50) as f64 * us),
                format!("{:.1}", h.quantile(0.99) as f64 * us),
                format!("{:.1}", h.quantile(0.999) as f64 * us),
            ],
        );
    }
    println!(
        "-- open loop at 2x: ok {:.3} Mops/s, shed {:.1}%, timeout {:.1}% (deadline {:?})",
        open.mops(),
        open.rate(open.shed) * 100.0,
        open.rate(open.timeout) * 100.0,
        deadline,
    );
    println!("-- drained: {drained}");

    let overall = sojourn.merged();
    let json = format!(
        concat!(
            "{{\"schema\":\"pacsrv_bench/v1\",\"stamp\":{},\"mix\":\"{}\",\"threads\":{},",
            "\"embedded\":{{\"mops\":{:.6}}},",
            "\"service\":{{\"mops\":{:.6},\"ratio\":{:.4},\"shed\":{},\"timeout\":{},",
            "\"p50_us\":{:.2},\"p99_us\":{:.2},\"p999_us\":{:.2}}},",
            "\"overload_2x\":{{\"mops\":{:.6},\"shed_rate\":{:.4},\"timeout_rate\":{:.4}}},",
            "\"drained\":{}}}"
        ),
        stamp_json(&scale),
        mix.short_name(),
        threads,
        embedded.mops,
        closed.mops(),
        ratio,
        closed.shed,
        closed.timeout,
        overall.quantile(0.50) as f64 * us,
        overall.quantile(0.99) as f64 * us,
        overall.quantile(0.999) as f64 * us,
        open.mops(),
        open.rate(open.shed),
        open.rate(open.timeout),
        drained,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/pacsrv_bench.json", &json) {
        Ok(()) => println!("wrote results/pacsrv_bench.json"),
        Err(e) => eprintln!("could not write results/pacsrv_bench.json: {e}"),
    }

    // The CI smoke job greps for this line: closed-loop service traffic
    // must be error-free and the drain must complete.
    let clean = drained && closed.shed == 0 && closed.timeout == 0;
    println!(
        "pacsrv-bench: {} (ratio {ratio:.3}, closed-loop errors {})",
        if clean { "CLEAN" } else { "DIRTY" },
        closed.shed + closed.timeout,
    );
    drop(service);
    idx.destroy();
    if !clean {
        std::process::exit(1);
    }
}
