//! pacsrv-bench: service-mode vs embedded YCSB, closed and open loop.
//!
//! Three measured phases over one populated PACTree:
//!
//! 1. **embedded** — the plain library path: `ycsb::driver` drives the
//!    index from T threads (the baseline every other figure uses);
//! 2. **service closed-loop** — the same mix through a `pacsrv` service
//!    with T shard workers, T clients submitting batches over the
//!    zero-copy in-process transport and waiting for each reply set; the
//!    headline is the service/embedded throughput ratio (target >= 0.70)
//!    plus the service-side sojourn percentiles (p50/p99/p999);
//! 3. **service open-loop at 2x** — paced submission at twice the
//!    closed-loop rate with a per-op deadline: demonstrates admission
//!    control (explicit `Overloaded` sheds, `DeadlineExceeded` drops,
//!    bounded queues) instead of queue collapse;
//! 4. **scan interference** — writer clients pushing Puts while scanner
//!    clients run long scans through the service, first live (`Scan`) and
//!    then snapshot-isolated (`Snapshot`/`ScanAt`/`ReleaseSnapshot`, the
//!    wire-v3 ops); reported as writer-throughput retention vs a
//!    no-scanner baseline.
//!
//! Writes `results/pacsrv_bench.json` (schema `pacsrv_bench/v2`, stamped
//! with git commit + configuration). `--quick` shrinks everything for the
//! CI smoke job and skips nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{banner, mops, row, stamp_json, AnyIndex, Kind, Scale};
use obsv::OpKind;
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ycsb::interference::ScanMode;
use ycsb::workload::Op;
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn to_request(op: Op, space: KeySpace, rng_value: u64) -> Request {
    match op {
        Op::Read(id) => Request::Get {
            key: space.encode(id),
        },
        Op::Insert(id) => Request::Put {
            key: space.encode(id),
            value: id,
        },
        Op::Update(id) => Request::Put {
            key: space.encode(id),
            value: rng_value,
        },
        Op::Scan(id, len) => Request::Scan {
            start: space.encode(id),
            count: len as u32,
        },
    }
}

struct LoopOutcome {
    ok: u64,
    shed: u64,
    timeout: u64,
    /// Model-time seconds.
    seconds: f64,
}

impl LoopOutcome {
    fn mops(&self) -> f64 {
        self.ok as f64 / self.seconds / 1e6
    }
    fn rate(&self, n: u64) -> f64 {
        let total = self.ok + self.shed + self.timeout;
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }
}

fn tally(resp: Response, ok: &AtomicU64, shed: &AtomicU64, timeout: &AtomicU64) {
    match resp {
        Response::Overloaded | Response::Aborted => shed.fetch_add(1, Ordering::Relaxed),
        Response::DeadlineExceeded => timeout.fetch_add(1, Ordering::Relaxed),
        _ => ok.fetch_add(1, Ordering::Relaxed),
    };
}

/// One client-side load configuration for [`drive_service`].
struct Drive {
    total_ops: u64,
    clients: usize,
    batch: usize,
    /// Per-client pacing rate for the open loop; 0 means closed loop
    /// (wait for each reply set before submitting the next batch).
    pace_ops_per_sec: f64,
    deadline: Option<Duration>,
    dilation: f64,
}

/// Runs `d.total_ops` of `workload` through the service from `d.clients`
/// threads.
fn drive_service(
    service: &Arc<PacService<AnyIndex>>,
    workload: &Workload,
    space: KeySpace,
    d: &Drive,
) -> LoopOutcome {
    let Drive {
        total_ops,
        clients,
        batch,
        pace_ops_per_sec,
        deadline,
        dilation,
    } = *d;
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let timeout = AtomicU64::new(0);
    let per_client = total_ops / clients as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (ok, shed, timeout) = (&ok, &shed, &timeout);
            let workload = workload.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xbeef ^ (c as u64).wrapping_mul(0x9E37));
                let mut next_insert =
                    workload.populated + (c as u64 + 1) * (u64::MAX / 4 / clients as u64);
                let client_start = Instant::now();
                let mut open_pending = Vec::new();
                let mut issued = 0u64;
                while issued < per_client {
                    let n = (batch as u64).min(per_client - issued) as usize;
                    let reqs: Vec<Request> = (0..n)
                        .map(|i| {
                            let op = workload.next_op(&mut rng, &mut || {
                                next_insert += 1;
                                next_insert
                            });
                            to_request(op, space, issued + i as u64)
                        })
                        .collect();
                    issued += n as u64;
                    let rs = service.submit(reqs, deadline);
                    if pace_ops_per_sec > 0.0 {
                        open_pending.push(rs);
                        // Pace to the target rate; drain finished sets
                        // opportunistically to bound memory. Every drained
                        // set is tallied — dropping completed sets uncounted
                        // would bias the sample toward slow batches (shed
                        // batches complete instantly and would vanish).
                        let due = Duration::from_secs_f64(issued as f64 / pace_ops_per_sec);
                        if let Some(sleep) = due.checked_sub(client_start.elapsed()) {
                            std::thread::sleep(sleep);
                        }
                        if open_pending.len() >= 64 {
                            for rs in std::mem::take(&mut open_pending) {
                                if rs.is_done() {
                                    for resp in rs.wait() {
                                        tally(resp, ok, shed, timeout);
                                    }
                                } else {
                                    open_pending.push(rs);
                                }
                            }
                        }
                    } else {
                        for resp in rs.wait() {
                            tally(resp, ok, shed, timeout);
                        }
                    }
                }
                for rs in open_pending {
                    for resp in rs.wait() {
                        tally(resp, ok, shed, timeout);
                    }
                }
            });
        }
    });
    LoopOutcome {
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        timeout: timeout.load(Ordering::Relaxed),
        seconds: start.elapsed().as_secs_f64() / dilation.max(1.0),
    }
}

/// One phase-4 measurement: writer clients pushing Put batches closed-loop
/// while scanner clients run long scans through the service.
struct ScanPhase {
    /// Writer throughput, model-time Mops/s.
    writer_mops: f64,
    /// Scans the scanner clients completed.
    scans: u64,
}

#[allow(clippy::too_many_arguments)]
fn scan_interference(
    service: &Arc<PacService<AnyIndex>>,
    space: KeySpace,
    populated: u64,
    writer_ops: u64,
    writers: usize,
    scanners: usize,
    scan_len: u32,
    dilation: f64,
    mode: ScanMode,
) -> ScanPhase {
    let stop = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    let per_writer = writer_ops / writers.max(1) as u64;
    let start = Instant::now();
    let mut seconds = 0.0;
    std::thread::scope(|s| {
        let mut writer_handles = Vec::new();
        for c in 0..writers.max(1) {
            writer_handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xd00d ^ (c as u64).wrapping_mul(0x9E37));
                let mut issued = 0u64;
                while issued < per_writer {
                    let n = 16.min(per_writer - issued) as usize;
                    let reqs: Vec<Request> = (0..n)
                        .map(|_| Request::Put {
                            key: space.encode(rng.gen_range(0..populated.max(1))),
                            value: rng.gen(),
                        })
                        .collect();
                    issued += n as u64;
                    service.submit(reqs, None).wait();
                }
            }));
        }
        let scanner_count = if mode == ScanMode::None {
            0
        } else {
            scanners.max(1)
        };
        for c in 0..scanner_count {
            let (stop, scans) = (&stop, &scans);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5ca9 ^ (c as u64).wrapping_mul(0x51F1));
                while !stop.load(Ordering::Relaxed) {
                    let start_key = space.encode(rng.gen_range(0..populated.max(1)));
                    match mode {
                        ScanMode::None => unreachable!("no scanners in baseline mode"),
                        ScanMode::Live => {
                            service
                                .submit(
                                    vec![Request::Scan {
                                        start: start_key,
                                        count: scan_len,
                                    }],
                                    None,
                                )
                                .wait();
                        }
                        ScanMode::Snapshot => {
                            let resps = service.submit(vec![Request::Snapshot], None).wait();
                            let Some(Response::Snapshot(snap)) = resps.into_iter().next() else {
                                continue; // shed under load; retry
                            };
                            service
                                .submit(
                                    vec![Request::ScanAt {
                                        snap,
                                        start: start_key,
                                        count: scan_len,
                                    }],
                                    None,
                                )
                                .wait();
                            service
                                .submit(vec![Request::ReleaseSnapshot { snap }], None)
                                .wait();
                        }
                    }
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for h in writer_handles {
            h.join().expect("writer client panicked");
        }
        seconds = start.elapsed().as_secs_f64() / dilation.max(1.0);
        stop.store(true, Ordering::Relaxed);
    });
    ScanPhase {
        writer_mops: (per_writer * writers.max(1) as u64) as f64 / seconds / 1e6,
        scans: scans.load(Ordering::Relaxed),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    pmem::numa::set_topology(2);
    let scale = if quick {
        Scale {
            keys: 8_000,
            ops: 8_000,
            threads: vec![4],
            dilation: 32.0,
            pool_size: 256 << 20,
        }
    } else {
        Scale::from_env()
    };
    let threads = scale.max_threads().min(56);
    banner("pacsrv-bench", "service mode vs embedded (YCSB-B)", &scale);

    // Wall ns -> model-time µs for histogram reporting.
    let us = 1e-3 / scale.dilation.max(1.0);
    let space = KeySpace::Integer;
    let mix = Mix::B;

    let idx = AnyIndex::create(Kind::PacTree, "pacsrv-bench", space, &scale);
    driver::populate(&idx, space, scale.keys, 4);
    let workload = Workload::zipfian(mix, scale.keys);

    // Phase 1: embedded baseline.
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let embedded = driver::run_workload(
        &idx,
        &workload,
        space,
        &DriverConfig {
            threads,
            ops: scale.ops,
            dilation: scale.dilation,
            ..Default::default()
        },
    );
    model::set_config(NvmModelConfig::disabled());

    // Phase 2: the same mix through the service, closed loop.
    let cfg = ServiceConfig {
        shards: threads,
        queue_capacity: 1024,
        batch_max: 32,
        ..ServiceConfig::named("pacsrv-bench", threads)
    };
    let service = PacService::start(idx.clone(), cfg);
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let closed = drive_service(
        &service,
        &workload,
        space,
        &Drive {
            total_ops: scale.ops,
            clients: threads,
            batch: 16,
            pace_ops_per_sec: 0.0,
            deadline: None,
            dilation: scale.dilation,
        },
    );
    model::set_config(NvmModelConfig::disabled());
    let sojourn = service.metrics().ops.snapshot();
    let ratio = closed.mops() / embedded.mops.max(1e-12);

    // Phase 3: open loop at 2x the closed-loop rate, with a deadline.
    let closed_wall_rate = closed.ok as f64 / (closed.seconds * scale.dilation.max(1.0));
    let per_client_rate = 2.0 * closed_wall_rate / threads as f64;
    let deadline = Duration::from_millis(if quick { 200 } else { 500 });
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let open = drive_service(
        &service,
        &workload,
        space,
        &Drive {
            total_ops: scale.ops,
            clients: threads,
            batch: 16,
            pace_ops_per_sec: per_client_rate,
            deadline: Some(deadline),
            dilation: scale.dilation,
        },
    );
    model::set_config(NvmModelConfig::disabled());

    // Phase 4: scan interference — long scans through the service while
    // writer clients keep pushing Puts, live vs snapshot-isolated.
    let s_writers = (threads / 2).max(1);
    let s_scanners = (threads / 4).max(1);
    let scan_len: u32 = if quick { 200 } else { 1000 };
    let phase_ops = (scale.ops / 2).max(s_writers as u64);
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let run_phase = |mode| {
        scan_interference(
            &service,
            space,
            scale.keys,
            phase_ops,
            s_writers,
            s_scanners,
            scan_len,
            scale.dilation,
            mode,
        )
    };
    let s_base = run_phase(ScanMode::None);
    let s_live = run_phase(ScanMode::Live);
    let s_snap = run_phase(ScanMode::Snapshot);
    model::set_config(NvmModelConfig::disabled());
    let live_ret = s_live.writer_mops / s_base.writer_mops.max(1e-12);
    let snap_ret = s_snap.writer_mops / s_base.writer_mops.max(1e-12);

    let drained = service.shutdown(Duration::from_secs(30));

    // Report.
    println!("-- throughput (model-time Mops/s, W-B zipfian, t={threads})");
    row("mode", &["Mops".into(), "ratio".into()]);
    row("embedded", &[mops(embedded.mops), "1.000".into()]);
    row(
        "service closed-loop",
        &[mops(closed.mops()), format!("{ratio:.3}")],
    );
    println!("-- service sojourn latency (model-time µs, admission -> completion)");
    row(
        "op",
        &["count".into(), "p50".into(), "p99".into(), "p99.9".into()],
    );
    for kind in OpKind::ALL {
        let h = sojourn.get(kind);
        if h.count() == 0 {
            continue;
        }
        row(
            kind.name(),
            &[
                h.count().to_string(),
                format!("{:.1}", h.quantile(0.50) as f64 * us),
                format!("{:.1}", h.quantile(0.99) as f64 * us),
                format!("{:.1}", h.quantile(0.999) as f64 * us),
            ],
        );
    }
    println!(
        "-- open loop at 2x: ok {:.3} Mops/s, shed {:.1}%, timeout {:.1}% (deadline {:?})",
        open.mops(),
        open.rate(open.shed) * 100.0,
        open.rate(open.timeout) * 100.0,
        deadline,
    );
    println!(
        "-- scan interference ({s_writers} writers, {s_scanners} scanners, {scan_len}-key scans)"
    );
    row(
        "mode",
        &["writer Mops".into(), "retention".into(), "scans".into()],
    );
    row(
        "no scanners",
        &[mops(s_base.writer_mops), "1.000".into(), "0".into()],
    );
    row(
        "live scans",
        &[
            mops(s_live.writer_mops),
            format!("{live_ret:.3}"),
            s_live.scans.to_string(),
        ],
    );
    row(
        "snapshot scans",
        &[
            mops(s_snap.writer_mops),
            format!("{snap_ret:.3}"),
            s_snap.scans.to_string(),
        ],
    );
    println!("-- drained: {drained}");

    let overall = sojourn.merged();
    let json = format!(
        concat!(
            "{{\"schema\":\"pacsrv_bench/v2\",\"stamp\":{},\"mix\":\"{}\",\"threads\":{},",
            "\"embedded\":{{\"mops\":{:.6}}},",
            "\"service\":{{\"mops\":{:.6},\"ratio\":{:.4},\"shed\":{},\"timeout\":{},",
            "\"p50_us\":{:.2},\"p99_us\":{:.2},\"p999_us\":{:.2}}},",
            "\"overload_2x\":{{\"mops\":{:.6},\"shed_rate\":{:.4},\"timeout_rate\":{:.4}}},",
            "\"scan_interference\":{{\"writers\":{},\"scanners\":{},\"scan_len\":{},",
            "\"baseline_mops\":{:.6},",
            "\"live_mops\":{:.6},\"live_retention\":{:.4},\"live_scans\":{},",
            "\"snapshot_mops\":{:.6},\"snapshot_retention\":{:.4},\"snapshot_scans\":{}}},",
            "\"drained\":{}}}"
        ),
        stamp_json(&scale),
        mix.short_name(),
        threads,
        embedded.mops,
        closed.mops(),
        ratio,
        closed.shed,
        closed.timeout,
        overall.quantile(0.50) as f64 * us,
        overall.quantile(0.99) as f64 * us,
        overall.quantile(0.999) as f64 * us,
        open.mops(),
        open.rate(open.shed),
        open.rate(open.timeout),
        s_writers,
        s_scanners,
        scan_len,
        s_base.writer_mops,
        s_live.writer_mops,
        live_ret,
        s_live.scans,
        s_snap.writer_mops,
        snap_ret,
        s_snap.scans,
        drained,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/pacsrv_bench.json", &json) {
        Ok(()) => println!("wrote results/pacsrv_bench.json"),
        Err(e) => eprintln!("could not write results/pacsrv_bench.json: {e}"),
    }

    // The CI smoke job greps for this line: closed-loop service traffic
    // must be error-free and the drain must complete.
    let clean = drained && closed.shed == 0 && closed.timeout == 0;
    println!(
        "pacsrv-bench: {} (ratio {ratio:.3}, closed-loop errors {})",
        if clean { "CLEAN" } else { "DIRTY" },
        closed.shed + closed.timeout,
    );
    drop(service);
    idx.destroy();
    if !clean {
        std::process::exit(1);
    }
}
