//! Figure 3: PDL-ART insert-only throughput with the crash-consistent
//! (PMDK-like) allocator vs the transient (modified-jemalloc) allocator.
//!
//! Paper result: the PMDK allocator's crash-consistency work (six flushes
//! per alloc/free pair) halves insert throughput (~2x drop).

use bench::{banner, mops, row, Scale};
use pdl_art::{PdlArt, PdlArtConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use pmem::AllocMode;
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 3",
        "PDL-ART insert-only: Jemalloc-like vs PMDK-like allocator",
        &scale,
    );

    let threads = scale.max_threads().min(28);
    let mut out = Vec::new();
    for (label, mode) in [
        ("Jemalloc", AllocMode::Transient),
        ("PMDK", AllocMode::CrashConsistent),
    ] {
        let idx = PdlArt::create(
            PdlArtConfig::named(&format!("fig03-{label}"))
                .with_pool_size(scale.pool_size)
                .with_alloc_mode(mode),
        )
        .expect("create");
        model::set_config(NvmModelConfig::optane_dilated(
            CoherenceMode::Snoop,
            scale.dilation,
        ));
        let w = Workload::uniform(Mix::LoadA, 0);
        let cfg = DriverConfig {
            threads,
            ops: scale.ops,
            dilation: scale.dilation,
            ..Default::default()
        };
        let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
        model::set_config(NvmModelConfig::disabled());
        println!(
            "{label:<10} {} Mops/s  ({} flushes)",
            mops(r.mops),
            r.stats.flushes
        );
        out.push(r.mops);
        idx.destroy();
    }
    row("allocator", &["Jemalloc".into(), "PMDK".into()]);
    row("Mops/s", &[mops(out[0]), mops(out[1])]);
    println!(
        "-- Jemalloc/PMDK: {:.2}x (paper: ~2x)",
        out[0] / out[1].max(1e-9)
    );
}
