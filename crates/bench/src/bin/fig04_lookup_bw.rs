//! Figure 4: lookup throughput and total NVM media reads, FastFair (B+tree)
//! vs PDL-ART (trie), for integer and string keys (YCSB-C).
//!
//! Paper result (GA1): the B+tree reads far more NVM per lookup — 7.7x more
//! media reads with string keys — and the trie is ~3.7x faster, because
//! trie nodes pack *partial* keys while every B+tree probe is a full key
//! comparison.

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 4",
        "YCSB-C lookups: throughput + NVM media reads (FastFair vs PDL-ART)",
        &scale,
    );
    let threads = scale.max_threads().min(28);

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for space in [KeySpace::Integer, KeySpace::String] {
        for kind in [Kind::FastFair, Kind::PdlArt] {
            let name = format!("fig04-{}-{:?}", kind.name(), space);
            let idx = AnyIndex::create(kind, &name, space, &scale);
            driver::populate(&idx, space, scale.keys, 4);
            model::set_config(NvmModelConfig::optane_dilated(
                CoherenceMode::Snoop,
                scale.dilation,
            ));
            let w = Workload::zipfian(Mix::C, scale.keys);
            let cfg = DriverConfig {
                threads,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            let r = driver::run_workload(&idx, &w, space, &cfg);
            model::set_config(NvmModelConfig::disabled());
            rows.push((
                format!("{:?}/{}", space, kind.name()),
                r.mops,
                r.stats.read_gib(),
            ));
            idx.destroy();
        }
    }

    row("config", &["Mops/s".into(), "NVM read GiB".into()]);
    for (label, m, gib) in &rows {
        row(label, &[mops(*m), format!("{gib:.3}")]);
    }
    println!(
        "-- string keys: FastFair reads {:.1}x more NVM than PDL-ART (paper: 7.7x); PDL-ART is {:.1}x faster (paper: 3.7x)",
        rows[2].2 / rows[3].2.max(1e-9),
        rows[3].1 / rows[2].1.max(1e-9),
    );
}
