//! health-demo: the observability stack end to end, with a verdict.
//!
//! Boots a full serving stack — PACTree behind a [`pacsrv::PacService`],
//! a plain-TCP health listener, a time-series scraper
//! ([`obsv::Scraper`] + [`obsv::Tsdb`]), and an [`obsv::SloEngine`] with a
//! shed-rate objective on scaled-down alerting windows — then drives a
//! three-phase load shape and asserts the alerting pipeline reacts:
//!
//! 1. **baseline** — traffic paced below the service's admission limit;
//!    the SLO must stay quiet;
//! 2. **overload** — open-loop submission paced at 2x the admission limit
//!    (the same overload shape as pacsrv-bench's phase 3, made
//!    deterministic by the ingress token bucket): the service sheds
//!    roughly half of the offered load, the shed-rate burn crosses
//!    threshold on both windows, and the SLO must fire within one fast
//!    window (plus scrape slack); while firing, the health endpoint is
//!    scraped over plain HTTP into `results/health_scrape.txt`;
//! 3. **cooldown** — load stops; once the fast window no longer covers
//!    the episode the alert must clear.
//!
//! Artifacts: `results/health_scrape.txt` (Prometheus text, captured
//! while firing), `results/slo_events.jsonl` (schema `slo_events/v1`, the
//! fire/clear transitions), `results/health_timeseries.jsonl` (the tsdb
//! ring dump — the alert episode is visible as the `slo.*.firing` gauge
//! going 0 -> 1 -> 0 across samples). Exits nonzero if the alert never
//! fires, never clears, or the episode is missing from the time series.
//!
//! Flags: `--port N` binds the health listener to a fixed port (default
//! ephemeral), `--hold-secs N` keeps serving (with light background load)
//! for N seconds after the verdict so external scrapers — `curl`,
//! `pacsrv-top` — can poll a live endpoint; the CI health-smoke job uses
//! both.

use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{AnyIndex, Kind, Scale};
use pacsrv::wire::Request;
use pacsrv::{HealthServer, PacService, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ycsb::{driver, KeySpace};

const SCRAPE_INTERVAL: Duration = Duration::from_millis(200);
const FAST_WINDOW: Duration = Duration::from_secs(2);
const SLOW_WINDOW: Duration = Duration::from_secs(8);
const SLO_NAME: &str = "demo.shed_rate";

/// The service's admission limit: the ingress bucket refills at this
/// rate, making "overloaded" a configuration fact instead of a guess
/// about host speed.
const INGRESS_RATE: u64 = 50_000;
/// Baseline offered load: comfortably under the admission limit.
const BASE_RATE: f64 = 20_000.0;
/// Overload offered load: 2x the admission limit, so roughly half of it
/// is shed regardless of how fast the host executes lookups.
const OVERLOAD_RATE: f64 = 2.0 * INGRESS_RATE as f64;

/// Drives Get batches at `ops_per_sec` total from `clients` threads until
/// `stop`. Closed mode waits for every reply set before pacing on (clean
/// baseline traffic); open mode leaves replies pending like an external
/// load generator, so the offered rate holds even when the service sheds.
/// Returns total ops submitted.
fn drive(
    service: &Arc<PacService<AnyIndex>>,
    keys: u64,
    clients: usize,
    ops_per_sec: f64,
    closed: bool,
    stop: &AtomicBool,
) -> u64 {
    let per_client = ops_per_sec / clients as f64;
    let submitted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..clients {
            let submitted = &submitted;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xFEED ^ (c as u64).wrapping_mul(0x9E37));
                let start = Instant::now();
                let mut issued = 0u64;
                let mut pending = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let reqs: Vec<Request> = (0..8)
                        .map(|_| Request::Get {
                            key: KeySpace::Integer.encode(rng.gen_range(0..keys)),
                        })
                        .collect();
                    issued += reqs.len() as u64;
                    submitted.fetch_add(reqs.len() as u64, Ordering::Relaxed);
                    let rs = service.submit(reqs, Some(Duration::from_millis(250)));
                    if closed {
                        rs.wait();
                    } else {
                        pending.push(rs);
                        if pending.len() >= 64 {
                            pending.retain(|rs| !rs.is_done());
                        }
                    }
                    let due = Duration::from_secs_f64(issued as f64 / per_client);
                    if let Some(sleep) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(sleep);
                    }
                }
                for rs in pending {
                    rs.wait();
                }
            });
        }
    });
    submitted.load(Ordering::Relaxed)
}

/// Scrapes `addr` over plain HTTP, returning the exposition body.
fn http_scrape(addr: std::net::SocketAddr) -> std::io::Result<String> {
    let mut sock = std::net::TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(Duration::from_secs(5)))?;
    sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut reply = String::new();
    sock.read_to_string(&mut reply)?;
    Ok(reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(reply))
}

fn fail(msg: &str) -> ! {
    println!("health-demo: FAIL ({msg})");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let port = opt("--port").unwrap_or(0);
    let hold_secs = opt("--hold-secs").unwrap_or(0);

    pmem::numa::set_topology(1);
    pmem::model::set_config(pmem::model::NvmModelConfig::disabled());
    let scale = Scale {
        keys: 20_000,
        ops: 0, // phases are time-driven, not op-counted
        threads: vec![2],
        dilation: 1.0,
        pool_size: 256 << 20,
    };
    let keys = scale.keys;
    println!("== health-demo: SLO fire/clear episode against a live pacsrv");

    let idx = AnyIndex::create(Kind::PacTree, "health-demo", KeySpace::Integer, &scale);
    driver::populate(&idx, KeySpace::Integer, keys, 4);

    // The ingress bucket is the overload knob: offered load above
    // INGRESS_RATE sheds at admission, deterministically.
    let service = PacService::start(
        idx.clone(),
        ServiceConfig {
            shards: 2,
            queue_capacity: 1024,
            batch_max: 8,
            ingress_rate: Some(INGRESS_RATE),
            ingress_burst: 512,
            numa_pin: false,
            ..ServiceConfig::named("pacsrv-demo", 2)
        },
    );

    // Observability stack: tsdb ring + scraper + SLO engine + health TCP.
    std::fs::create_dir_all("results").ok();
    let tsdb = obsv::Tsdb::with_retention(SCRAPE_INTERVAL, Duration::from_secs(120));
    let spec = obsv::SloSpec::ratio(
        SLO_NAME,
        "pacsrv-demo.shed.total",
        "pacsrv-demo.admitted.total",
        0.01, // objective: <1% of submissions shed
    )
    .with_windows(FAST_WINDOW.as_nanos() as u64, SLOW_WINDOW.as_nanos() as u64);
    let engine = obsv::SloEngine::new(Arc::clone(&tsdb), vec![spec]);
    engine.set_event_sink(Box::new(
        std::fs::File::create("results/slo_events.jsonl").expect("create slo_events.jsonl"),
    ));
    // The engine's own firing/burn gauges join the registry, so the alert
    // episode lands in the scraped time series alongside the service
    // metrics it was computed from.
    let _slo_gauges = engine.register_gauges(obsv::global());
    service.set_slo_engine(Arc::clone(&engine));
    let scraper = obsv::Scraper::start(
        Arc::clone(&tsdb),
        SCRAPE_INTERVAL,
        Some(Arc::clone(&engine)),
    );
    let health = HealthServer::start(Arc::clone(&service), format!("127.0.0.1:{port}"))
        .expect("bind health listener");
    println!("   health endpoint: http://{}/metrics", health.local_addr());

    // Phase 1: baseline — paced under the admission limit, closed loop.
    let baseline_for = Duration::from_millis(2_500);
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let submitted = std::thread::scope(|s| {
        let h = s.spawn(|| drive(&service, keys, 2, BASE_RATE, true, &stop));
        std::thread::sleep(baseline_for);
        stop.store(true, Ordering::Relaxed);
        h.join().expect("baseline drivers")
    });
    println!(
        "-- baseline: {submitted} ops in {:?} ({:.0} offered, {INGRESS_RATE} admitted limit), slo quiet: {}",
        t0.elapsed(),
        BASE_RATE,
        !engine.any_firing()
    );
    if engine.any_firing() {
        fail("SLO fired under clean baseline load");
    }

    // Phase 2: overload at 2x the admission limit, open loop. The alert
    // must fire within one fast window plus scrape slack.
    let overload_budget = FAST_WINDOW + Duration::from_secs(3);
    let stop = AtomicBool::new(false);
    let fired_after = std::thread::scope(|s| {
        let driver = s.spawn(|| drive(&service, keys, 2, OVERLOAD_RATE, false, &stop));
        let t0 = Instant::now();
        let mut fired = None;
        while t0.elapsed() < overload_budget {
            if engine.any_firing() {
                fired = Some(t0.elapsed());
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if fired.is_some() {
            // Capture the exposition while the alert is live.
            match http_scrape(health.local_addr()) {
                Ok(text) => {
                    if let Err(e) = std::fs::write("results/health_scrape.txt", &text) {
                        eprintln!("could not write health_scrape.txt: {e}");
                    }
                }
                Err(e) => eprintln!("mid-episode scrape failed: {e}"),
            }
            // Keep the overload up one more beat so the episode spans
            // several samples in the time series.
            std::thread::sleep(SCRAPE_INTERVAL * 3);
        }
        stop.store(true, Ordering::Relaxed);
        driver.join().expect("overload drivers");
        fired
    });
    let Some(fired_after) = fired_after else {
        fail(&format!(
            "shed-rate SLO did not fire within {overload_budget:?} of 2x overload"
        ));
    };
    let status = &engine.status()[0];
    println!(
        "-- overload: SLO fired after {fired_after:?} (burn fast {:.2} / slow {:.2}, threshold {:.1})",
        status.burn_fast, status.burn_slow, status.burn_threshold
    );

    // Phase 3: cooldown — the fast window must drain and the alert clear.
    let clear_budget = FAST_WINDOW + Duration::from_secs(4);
    let t0 = Instant::now();
    while engine.any_firing() && t0.elapsed() < clear_budget {
        std::thread::sleep(Duration::from_millis(50));
    }
    if engine.any_firing() {
        fail(&format!(
            "SLO still firing {clear_budget:?} after load stopped"
        ));
    }
    println!("-- cooldown: SLO cleared after {:?}", t0.elapsed());

    // Persist the time series and verify the episode is visible in it.
    let series = tsdb.gauge_series(&format!("slo.{SLO_NAME}.firing"), u64::MAX);
    let saw_fire = series.iter().any(|&(_, v)| v > 0.5);
    let cleared_last = series.last().is_some_and(|&(_, v)| v < 0.5);
    if let Err(e) = std::fs::write("results/health_timeseries.jsonl", tsdb.dump_jsonl(1.0)) {
        eprintln!("could not write health_timeseries.jsonl: {e}");
    }
    println!(
        "-- time series: {} samples, episode visible: {}",
        tsdb.len(),
        saw_fire && cleared_last
    );
    if !(saw_fire && cleared_last) {
        fail("alert episode not visible in the scraped time series");
    }

    println!(
        "wrote results/health_scrape.txt results/slo_events.jsonl results/health_timeseries.jsonl"
    );
    println!("health-demo: PASS (fired {fired_after:?} into overload, cleared on cooldown)");

    // Optional hold phase for external scrapers (CI curls + runs
    // pacsrv-top against this endpoint). Light paced load keeps the
    // counters moving between their polls.
    if hold_secs > 0 {
        println!("-- holding endpoint open {hold_secs}s for external scrapes");
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| drive(&service, keys, 1, BASE_RATE / 4.0, true, &stop));
            std::thread::sleep(Duration::from_secs(hold_secs));
            stop.store(true, Ordering::Relaxed);
        });
    }

    health.stop();
    scraper.stop();
    service.shutdown(Duration::from_secs(10));
    drop(service);
    idx.destroy();
}
