//! Figure 11: the low-bandwidth NVM machine (about 3x less cumulative NVM
//! bandwidth), uniform distribution, fixed thread count.
//!
//! Paper result: with less bandwidth headroom, PACTree's bandwidth-frugal
//! design matters more — its lead over PDL-ART grows by up to 0.5x on
//! write-intensive and 1.5x on read-intensive workloads.

use bench::{banner, ycsb_comparison, Kind, Scale};
use pmem::model::NvmModelConfig;
use ycsb::{Distribution, KeySpace};

fn main() {
    pmem::numa::set_topology(2);
    let mut scale = Scale::from_env();
    let t = scale.max_threads().min(32);
    scale.threads = vec![t];
    banner(
        "Figure 11",
        "low-bandwidth machine, uniform integer keys",
        &scale,
    );
    ycsb_comparison(
        "fig11",
        &Kind::all(),
        KeySpace::Integer,
        &scale,
        Distribution::Uniform,
        &|| {
            let mut c = NvmModelConfig::low_bandwidth();
            c.time_dilation = Scale::from_env().dilation;
            c
        },
    );
}
