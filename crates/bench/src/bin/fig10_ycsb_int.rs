//! Figure 10: YCSB integer keys (Zipfian), all workloads, thread sweep, all
//! five indexes.
//!
//! Paper result: same ordering as Figure 9 with FPTree added — FPTree
//! tracks PACTree on read-only C but slumps at high thread counts on every
//! mix with writes (HTM aborts), and FastFair recovers ground on scans
//! (embedded integer pairs scan sequentially).

use bench::{banner, ycsb_comparison, Kind, Scale};
use pmem::model::{CoherenceMode, NvmModelConfig};
use ycsb::{Distribution, KeySpace};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    banner("Figure 10", "YCSB integer keys, Zipfian", &scale);
    ycsb_comparison(
        "fig10",
        &Kind::all(),
        KeySpace::Integer,
        &scale,
        Distribution::Zipfian(0.99),
        &|| NvmModelConfig::optane_dilated(CoherenceMode::Snoop, Scale::from_env().dilation),
    );
}
