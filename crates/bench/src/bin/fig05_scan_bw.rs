//! Figure 5: scan throughput and total NVM media reads, FastFair vs
//! PDL-ART, integer keys.
//!
//! Paper result (GA5): FastFair's leaf nodes embed sorted pairs, so scans
//! are sequential, prefetcher-friendly NVM reads — 1.5x faster with 1.6x
//! fewer media reads than PDL-ART, which chases one out-of-node pointer per
//! key.

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ycsb::{driver, KeySpace, RangeIndex};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 5",
        "Scan throughput + NVM media reads (FastFair vs PDL-ART, integer)",
        &scale,
    );
    let threads = scale.max_threads().min(28);
    let scan_len = 100usize;
    let scans = scale.ops / 10; // each scan visits ~100 pairs

    let mut rows: Vec<(&'static str, f64, f64)> = Vec::new();
    for kind in [Kind::FastFair, Kind::PdlArt] {
        let name = format!("fig05-{}", kind.name());
        let idx = AnyIndex::create(kind, &name, KeySpace::Integer, &scale);
        driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
        model::set_config(NvmModelConfig::optane_dilated(
            CoherenceMode::Snoop,
            scale.dilation,
        ));
        let before = pmem::stats::global().snapshot();
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let idx = idx.clone();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64 + 5);
                    for _ in 0..scans / threads as u64 {
                        let id: u64 = rng.gen_range(0..scale.keys);
                        std::hint::black_box(idx.scan(&KeySpace::Integer.encode(id), scan_len));
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64() / scale.dilation;
        let delta = pmem::stats::global().snapshot().since(&before);
        model::set_config(NvmModelConfig::disabled());
        rows.push((kind.name(), scans as f64 / secs / 1e6, delta.read_gib()));
        idx.destroy();
    }

    row("index", &["scan Mops/s".into(), "NVM read GiB".into()]);
    for (label, m, gib) in &rows {
        row(label, &[mops(*m), format!("{gib:.3}")]);
    }
    println!(
        "-- FastFair scans {:.2}x faster with {:.2}x fewer reads (paper: 1.5x / 1.6x)",
        rows[0].1 / rows[1].1.max(1e-9),
        rows[1].2 / rows[0].2.max(1e-9),
    );
}
