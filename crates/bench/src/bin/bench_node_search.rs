//! Node-probe kernel microbenchmark plus an end-to-end A/B of the SIMD
//! dispatch (ISSUE 6 acceptance: ≥2× single-node probe speedup SIMD vs
//! SWAR, ≥10% YCSB-C lookup throughput).
//!
//! Two layers:
//!
//! * **Micro**: ns-per-probe of the three kernel sets (naive scalar, SWAR
//!   fallback, best vector set for this host) on the two shapes the tree
//!   actually probes — the 64-byte data-node fingerprint array and the
//!   Node16 child-key array — over a rotating pool of 8-aligned arrays so
//!   the SWAR word path (not its misalignment fallback) is what's timed.
//! * **End-to-end**: YCSB-C (100% uniform reads) and a range-scan pass on
//!   a real PACTree, once per dispatch arm. The dispatcher latches its
//!   choice in a `OnceLock` at first use, so each arm runs in a child
//!   process (`--ycsb-arm`) of this same binary: the parent sets or clears
//!   `PACTREE_NO_SIMD` in the child's environment and parses one
//!   `ARM_RESULT ...` line from its stdout. Both arms run DRAM-speed
//!   (NVM model disabled, dilation 1): modeled media stalls would bury a
//!   CPU-kernel delta.
//!
//! Emits `results/bench_node_search.json` (schema `bench_node_search/v1`,
//! stamped with the git commit and workload scale). `--quick` shrinks
//! everything for the CI smoke job.

use std::sync::atomic::AtomicU8;
use std::time::Instant;

use bench::{stamp_json, Scale};
use pactree::{simd, PacTree, PacTreeConfig};
use pmem::model::{self, NvmModelConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use ycsb::{driver, Distribution, DriverConfig, KeySpace, Mix, RangeIndex, Workload};

/// 8-aligned like the in-tree `#[repr(C)]` node layouts, so the SWAR arm
/// takes its word path instead of the misalignment fallback.
#[repr(align(8))]
struct Aligned<const N: usize>([AtomicU8; N]);

fn filled<const N: usize>(seed: u64) -> Aligned<N> {
    let mut x = seed | 1;
    Aligned(std::array::from_fn(|_| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        AtomicU8::new((x >> 33) as u8)
    }))
}

/// ns per probe of `f` over a rotating pool of arrays (stays in L1; the
/// tree's hot probes are cache-resident too, that is the regime to time).
fn time_probe<const N: usize>(
    pool: &[Aligned<N>],
    iters: u64,
    mut f: impl FnMut(&[AtomicU8; N], u8) -> u64,
) -> f64 {
    let mut acc = 0u64;
    // Warmup pass outside the timed region.
    for i in 0..iters / 8 {
        let a = &pool[(i as usize) & (pool.len() - 1)];
        acc ^= f(&a.0, i as u8);
    }
    let t0 = Instant::now();
    for i in 0..iters {
        let a = &pool[(i as usize) & (pool.len() - 1)];
        acc ^= f(&a.0, (i as u8).wrapping_mul(0x9E));
    }
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    ns / iters as f64
}

struct MicroRow {
    scalar_ns: f64,
    swar_ns: f64,
    simd_ns: f64,
}

fn micro(iters: u64) -> (MicroRow, MicroRow) {
    let pool64: Vec<Aligned<64>> = (0..8).map(|i| filled(0xF1E2 + i)).collect();
    let pool16: Vec<Aligned<16>> = (0..8).map(|i| filled(0xA5A5 + i)).collect();
    let (scalar, swar, best) = (simd::scalar(), simd::swar(), simd::best());
    let fp64 = MicroRow {
        scalar_ns: time_probe(&pool64, iters, |a, b| scalar.fp64(a, b)),
        swar_ns: time_probe(&pool64, iters, |a, b| swar.fp64(a, b)),
        simd_ns: time_probe(&pool64, iters, |a, b| best.fp64(a, b)),
    };
    let n16 = MicroRow {
        scalar_ns: time_probe(&pool16, iters, |a, b| u64::from(scalar.match16(a, b, 16))),
        swar_ns: time_probe(&pool16, iters, |a, b| u64::from(swar.match16(a, b, 16))),
        simd_ns: time_probe(&pool16, iters, |a, b| u64::from(best.match16(a, b, 16))),
    };
    (fp64, n16)
}

/// Child-process body: builds a PACTree at DRAM speed, runs YCSB-C and a
/// scan pass under whatever kernel set the environment dispatches, and
/// prints one machine-readable result line.
fn run_arm(quick: bool, scale: &Scale) {
    let keys = if quick { 20_000 } else { scale.keys };
    let ops = if quick { 10_000 } else { scale.ops };
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if quick { 2 } else { host.min(4) };

    pmem::numa::set_topology(1);
    model::set_config(NvmModelConfig::disabled());
    let tree =
        PacTree::create(PacTreeConfig::named("bench-node-search").with_pool_size(scale.pool_size))
            .expect("create pactree");
    driver::populate(&tree, KeySpace::Integer, keys, 4);

    let w = Workload::new(Mix::C, Distribution::Uniform, keys);
    let cfg = DriverConfig {
        threads,
        ops,
        dilation: 1.0,
        ..Default::default()
    };
    // One unmeasured pass to warm caches and the dispatcher before timing.
    driver::run_workload(&tree, &w, KeySpace::Integer, &cfg);
    let report = driver::run_workload(&tree, &w, KeySpace::Integer, &cfg);

    // Range-scan bandwidth: fixed-length scans from random starts, single
    // thread (the jump-chase prefetch targets the per-scan pointer walk).
    let scans = if quick { 500 } else { (ops / 4).max(2_000) };
    let mut rng = StdRng::seed_from_u64(0x5CA7);
    let mut got = 0u64;
    let t0 = Instant::now();
    for _ in 0..scans {
        let start = rng.gen_range(0..keys);
        got += RangeIndex::scan(&tree, &KeySpace::Integer.encode(start), 100) as u64;
    }
    let scan_mkeys = got as f64 * 1e3 / t0.elapsed().as_nanos() as f64;

    println!(
        "ARM_RESULT kernel={} ycsb_c_mops={:.4} scan_mkeys={:.4}",
        simd::active().name(),
        report.mops,
        scan_mkeys
    );
    tree.destroy();
}

struct ArmOut {
    kernel: String,
    mops: f64,
    scan_mkeys: f64,
}

/// Re-execs this binary as `--ycsb-arm`, with `PACTREE_NO_SIMD` forced on
/// (`forced_swar`) or scrubbed, and parses its `ARM_RESULT` line.
fn spawn_arm(quick: bool, forced_swar: bool) -> ArmOut {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--ycsb-arm");
    if quick {
        cmd.arg("--quick");
    }
    if forced_swar {
        cmd.env("PACTREE_NO_SIMD", "1");
    } else {
        cmd.env_remove("PACTREE_NO_SIMD");
    }
    let out = cmd.output().expect("spawn arm");
    assert!(
        out.status.success(),
        "arm failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("ARM_RESULT "))
        .expect("arm printed no ARM_RESULT line");
    let field = |key: &str| -> String {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
            .to_string()
    };
    ArmOut {
        kernel: field("kernel"),
        mops: field("ycsb_c_mops").parse().expect("mops"),
        scan_mkeys: field("scan_mkeys").parse().expect("scan_mkeys"),
    }
}

fn pct_delta(simd: f64, swar: f64) -> f64 {
    if swar == 0.0 {
        return 0.0;
    }
    (simd - swar) / swar * 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = Scale::from_env();
    if args.iter().any(|a| a == "--ycsb-arm") {
        run_arm(quick, &scale);
        return;
    }

    let active = simd::active();
    println!("== bench_node_search: probe kernels + dispatch A/B");
    println!(
        "   active kernel set: {} (id {}), PACTREE_NO_SIMD={}",
        active.name(),
        active.id(),
        std::env::var("PACTREE_NO_SIMD").unwrap_or_default()
    );

    let iters = if quick { 200_000 } else { 5_000_000 };
    let (fp64, n16) = micro(iters);
    let speedup = fp64.swar_ns / fp64.simd_ns;
    println!("-- micro (ns/probe, pool of 8 aligned arrays)");
    println!(
        "   {:<22} {:>8} {:>8} {:>8}",
        "shape", "scalar", "swar", "simd"
    );
    println!(
        "   {:<22} {:>8.2} {:>8.2} {:>8.2}",
        "fingerprint fp64", fp64.scalar_ns, fp64.swar_ns, fp64.simd_ns
    );
    println!(
        "   {:<22} {:>8.2} {:>8.2} {:>8.2}",
        "node16 child search", n16.scalar_ns, n16.swar_ns, n16.simd_ns
    );
    println!("   fp64 speedup simd vs swar: {speedup:.2}x (bound: >=2x)");

    println!("-- end-to-end arms (DRAM speed, YCSB-C uniform + scan pass)");
    let swar_arm = spawn_arm(quick, true);
    let simd_arm = spawn_arm(quick, false);
    let ycsb_delta = pct_delta(simd_arm.mops, swar_arm.mops);
    let scan_delta = pct_delta(simd_arm.scan_mkeys, swar_arm.scan_mkeys);
    println!(
        "   swar arm ({}): ycsb-c {:.3} Mops, scan {:.3} Mkeys/s",
        swar_arm.kernel, swar_arm.mops, swar_arm.scan_mkeys
    );
    println!(
        "   simd arm ({}): ycsb-c {:.3} Mops ({:+.1}%), scan {:.3} Mkeys/s ({:+.1}%)",
        simd_arm.kernel, simd_arm.mops, ycsb_delta, simd_arm.scan_mkeys, scan_delta
    );
    assert_eq!(swar_arm.kernel, "swar", "forced arm must dispatch swar");

    std::fs::create_dir_all("results").expect("mkdir results");
    let json = format!(
        concat!(
            "{{\"schema\":\"bench_node_search/v1\",\"kernel\":\"{}\",\"quick\":{},",
            "\"micro_ns_per_probe\":{{",
            "\"fp64\":{{\"scalar\":{:.3},\"swar\":{:.3},\"simd\":{:.3}}},",
            "\"node16\":{{\"scalar\":{:.3},\"swar\":{:.3},\"simd\":{:.3}}}}},",
            "\"fp64_speedup_simd_vs_swar\":{:.3},",
            "\"ycsb_c\":{{\"swar_mops\":{:.4},\"simd_mops\":{:.4},\"delta_pct\":{:.2}}},",
            "\"scan\":{{\"swar_mkeys\":{:.4},\"simd_mkeys\":{:.4},\"delta_pct\":{:.2}}},",
            "\"stamp\":{}}}\n"
        ),
        active.name(),
        quick,
        fp64.scalar_ns,
        fp64.swar_ns,
        fp64.simd_ns,
        n16.scalar_ns,
        n16.swar_ns,
        n16.simd_ns,
        speedup,
        swar_arm.mops,
        simd_arm.mops,
        ycsb_delta,
        swar_arm.scan_mkeys,
        simd_arm.scan_mkeys,
        scan_delta,
        stamp_json(&scale)
    );
    std::fs::write("results/bench_node_search.json", json).expect("write results json");
    println!("-- wrote results/bench_node_search.json");
}
