//! obsv-report: exercises the whole observability layer end to end and
//! renders a summary table.
//!
//! Runs a write-heavy YCSB-A phase against PACTree with the full metrics
//! registry wired — pmem gauges (XPBuffer hit rate, throttle stall, media
//! counters), per-tree gauges (SMO replay lag, epoch backlog, jump-hop
//! distribution, retries), and per-op latency histograms — sampling the
//! registry during the run. Output:
//!
//! * `results/obsv_report.json` (schema `obsv_report/v1`): the sampled
//!   time series plus a post-quiesce final sample;
//! * with `--features obsv-heavy`, `results/obsv_timeseries.jsonl`: the
//!   background [`obsv::sampler::Sampler`]'s JSON-lines feed;
//! * a human-readable gauge + percentile table on stdout.
//!
//! `--quick` shrinks the workload for the CI smoke job.

use std::time::{Duration, Instant};

use bench::{banner, row, AnyIndex, Kind, Scale};
use obsv::OpKind;
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    pmem::numa::set_topology(2);
    let scale = if quick {
        Scale {
            keys: 6_000,
            ops: 6_000,
            threads: vec![4],
            dilation: 32.0,
            pool_size: 256 << 20,
        }
    } else {
        Scale::from_env()
    };
    let threads = scale.max_threads().min(56);
    banner("obsv-report", "observability layer end-to-end", &scale);

    // Wall-clock ns -> model-time µs for every histogram we print/emit.
    let us = 1e-3 / scale.dilation.max(1.0);

    let _pmem_gauges = pmem::stats::install_obsv_gauges();
    let idx = AnyIndex::create(Kind::PacTree, "obsv-report", KeySpace::Integer, &scale);
    driver::populate(&idx, KeySpace::Integer, scale.keys, 4);

    std::fs::create_dir_all("results").ok();
    let sampler = obsv::sampler::Sampler::start(
        "results/obsv_timeseries.jsonl",
        Duration::from_millis(20),
        us,
    )
    .expect("start background sampler");

    // Sample the registry while the workload runs in a worker thread.
    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let mut samples: Vec<String> = Vec::new();
    let report = std::thread::scope(|s| {
        let idx_ref = &idx;
        let worker = s.spawn(move || {
            let w = Workload::uniform(Mix::A, scale.keys);
            let cfg = DriverConfig {
                threads,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            driver::run_workload(idx_ref, &w, KeySpace::Integer, &cfg)
        });
        // Hold a snapshot across part of the write-heavy phase and scan
        // through it, so the MVCC gauges (`<tree>.mvcc.chain_max/chain_mean`,
        // snapshot counters) move in the sampled series instead of sitting
        // at their idle values.
        let tree = idx_ref.as_pactree().expect("obsv-report runs PACTree");
        let snap = tree.snapshot();
        let t0 = Instant::now();
        let mut scanned_at = 0usize;
        while !worker.is_finished() && t0.elapsed() < Duration::from_secs(600) {
            if let Some(pairs) = tree.scan_at(snap, &KeySpace::Integer.encode(0), 64) {
                scanned_at += pairs.len();
            }
            samples.push(obsv::global().sample().to_json(us));
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(tree.release_snapshot(snap), "snapshot survived the run");
        println!("-- mvcc: scanned {scanned_at} pairs through snapshot {snap} during the run");
        worker.join().expect("workload worker")
    });
    model::set_config(NvmModelConfig::disabled());

    // Quiesce: drain pending SMOs and the epoch backlog, then take the
    // final sample — the drain-to-zero the gauges should show.
    let drained = idx
        .as_pactree()
        .expect("obsv-report runs PACTree")
        .quiesce(Duration::from_secs(30));
    let final_sample = obsv::global().sample();
    samples.push(final_sample.to_json(us));
    sampler.stop();

    let json = format!(
        "{{\"schema\":\"obsv_report/v1\",\"stamp\":{},\"keys\":{},\"ops\":{},\"threads\":{},\"dilation\":{},\"unit\":\"us_model_time\",\"drained\":{},\"samples\":[{}]}}",
        bench::stamp_json(&scale),
        scale.keys,
        scale.ops,
        threads,
        scale.dilation,
        drained,
        samples.join(",")
    );
    match std::fs::write("results/obsv_report.json", &json) {
        Ok(()) => println!("wrote results/obsv_report.json ({} samples)", samples.len()),
        Err(e) => eprintln!("could not write results/obsv_report.json: {e}"),
    }

    println!("-- gauges (final, post-quiesce; drained={drained})");
    for (name, value) in &final_sample.gauges {
        row(name, &[format!("{value:.4}")]);
    }

    println!("-- op latency (model-time µs, YCSB-A measured phase)");
    row(
        "source.op",
        &[
            "count".into(),
            "mean".into(),
            "p50".into(),
            "p99".into(),
            "p99.9".into(),
            "max".into(),
        ],
    );
    for (source, set) in &final_sample.hists {
        for kind in OpKind::ALL {
            let h = set.get(kind);
            if h.count() == 0 {
                continue;
            }
            row(
                &format!("{source}.{}", kind.name()),
                &[
                    h.count().to_string(),
                    format!("{:.1}", h.mean() * us),
                    format!("{:.1}", h.quantile(0.50) as f64 * us),
                    format!("{:.1}", h.quantile(0.99) as f64 * us),
                    format!("{:.1}", h.quantile(0.999) as f64 * us),
                    format!("{:.1}", h.max() as f64 * us),
                ],
            );
        }
    }
    println!(
        "-- driver view: {:.3} Mops/s over {} ops",
        report.mops, report.ops
    );
    idx.destroy();
}
