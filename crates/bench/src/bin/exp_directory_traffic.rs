//! §3.1.1 (FH5): remote random reads under the directory coherence
//! protocol generate media *writes* (directory state updates).
//!
//! Paper measurement: 100% remote random 64-byte reads over an 870 MB file
//! produced 870 MB of reads and 481 MB of writes. Our model charges one
//! 64-byte directory write per remote cache-line read plus the XPLine read
//! itself, so the read:write ratio differs, but the qualitative result —
//! a read-only remote workload consuming write bandwidth — reproduces.

use pmem::model::{self, CoherenceMode, NvmModelConfig};
use pmem::pool::{destroy_pool, PmemPool, PoolConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("== §3.1.1: remote random reads, directory vs snoop");
    pmem::numa::set_topology(2);
    let size: usize = 64 << 20;
    let reads: usize = 1_000_000;

    for coherence in [CoherenceMode::Directory, CoherenceMode::Snoop] {
        let pool = PmemPool::create(
            PoolConfig::volatile(&format!("exp-dir-{coherence:?}"), size).on_node(1),
        )
        .unwrap();
        pmem::numa::pin_thread(0); // reader on node 0, media on node 1
        let mut cfg = NvmModelConfig::accounting();
        cfg.coherence = coherence;
        cfg.cpu_cache_lines = 0; // pure random working set >> cache
        model::set_config(cfg);
        let before = pool.stats().snapshot();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..reads {
            let off = (rng.gen_range(0..size as u64 / 64)) * 64;
            model::on_read(pool.id(), off, 64);
        }
        let d = pool.stats().snapshot().since(&before);
        model::set_config(NvmModelConfig::disabled());
        println!(
            "{coherence:?}: media reads {:.1} MB, directory writes {:.1} MB (ratio {:.2})",
            d.media_read_bytes as f64 / 1e6,
            d.directory_write_bytes as f64 / 1e6,
            d.directory_write_bytes as f64 / d.media_read_bytes.max(1) as f64,
        );
        destroy_pool(pool.id());
    }
    println!("-- paper: 870 MB reads generated 481 MB of writes under directory coherence; 0 under snoop");
}
