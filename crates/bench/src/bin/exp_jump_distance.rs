//! §6.7: impact of the asynchronous search-layer update — how far must a
//! lookup walk the data layer from its jump node?
//!
//! Paper result, write-intensive Workload A at 112 threads: 68% of locates
//! reach the target node directly, 30% need one hop.

use bench::{banner, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    banner(
        "§6.7",
        "jump-node distance under write-intensive load",
        &scale,
    );

    let idx = AnyIndex::create(Kind::PacTree, "exp-jump", KeySpace::Integer, &scale);
    driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
    let tree = idx.as_pactree().expect("pactree").clone();
    tree.stats().reset();

    model::set_config(NvmModelConfig::optane_dilated(
        CoherenceMode::Snoop,
        scale.dilation,
    ));
    let w = Workload::zipfian(Mix::A, scale.keys);
    let cfg = DriverConfig {
        threads: scale.max_threads(),
        ops: scale.ops,
        dilation: scale.dilation,
        ..Default::default()
    };
    let _ = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
    model::set_config(NvmModelConfig::disabled());

    let hist = tree.stats().jump_histogram();
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    row(
        "hops",
        &hist.iter().map(|(h, _)| h.to_string()).collect::<Vec<_>>(),
    );
    row(
        "% of locates",
        &hist
            .iter()
            .map(|&(_, c)| format!("{:.1}%", 100.0 * c as f64 / total.max(1) as f64))
            .collect::<Vec<_>>(),
    );
    println!(
        "-- direct-hit ratio {:.1}% (paper: 68% direct, 30% one hop)",
        100.0 * tree.direct_hit_ratio()
    );
    idx.destroy();
}
