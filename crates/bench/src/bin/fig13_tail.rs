//! Figure 13: tail latency (p50-p99.99) per workload, all indexes, uniform
//! integer keys at high thread count.
//!
//! Paper result: PACTree's 99.99th percentile is up to 20x lower on
//! write-intensive workloads (no SMO ever blocks the critical path, and
//! slotted leaves amortize allocation); BzTree and PDL-ART spike from
//! allocation storms; FPTree's scans are worst (sort+filter per leaf).
//!
//! Percentiles come from the indexes' always-on obsv histograms — every
//! operation is recorded inside the index (bounded 3.125% bucket error),
//! not 10%-sampled around the driver loop like the generic report path.
//! Besides the table, the run writes `results/fig13_tail.json`
//! (schema `fig13_tail/v1`) with per-index, per-op-kind percentiles for
//! `make_experiments_md.py` and the CI smoke job. `--quick` shrinks the
//! workload for smoke runs.

use bench::{banner, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Tail percentiles want every operation in the histogram, not the
    // default 1-in-16 latency sample; recording cost is irrelevant under
    // the dilated NVM model.
    obsv::set_sample_shift(0);
    pmem::numa::set_topology(2);
    let scale = if quick {
        Scale {
            keys: 8_000,
            ops: 4_000,
            threads: vec![4],
            dilation: 32.0,
            pool_size: 256 << 20,
        }
    } else {
        Scale::from_env()
    };
    let threads = scale.max_threads().min(56);
    banner("Figure 13", "tail latency, uniform integer keys", &scale);

    // Recorded latencies are wall-clock ns; report model-time µs.
    let us = 1e-3 / scale.dilation.max(1.0);
    let mut json_mixes = Vec::new();

    for mix in [Mix::A, Mix::B, Mix::C, Mix::E] {
        println!("-- {}", mix.short_name());
        row(
            "index",
            &[
                "p50".into(),
                "p90".into(),
                "p99".into(),
                "p99.9".into(),
                "p99.99".into(),
            ],
        );
        let mut json_indexes = Vec::new();
        for kind in Kind::all() {
            let name = format!("fig13-{}-{}", mix.short_name(), kind.name());
            let idx = AnyIndex::create(kind, &name, KeySpace::Integer, &scale);
            driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
            model::set_config(NvmModelConfig::optane_dilated(
                CoherenceMode::Snoop,
                scale.dilation,
            ));
            let w = Workload::uniform(mix, scale.keys);
            let cfg = DriverConfig {
                threads,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
            model::set_config(NvmModelConfig::disabled());
            let hist = r.hist.expect("every index records op histograms");
            let all = hist.merged();
            row(
                kind.name(),
                &[0.50, 0.90, 0.99, 0.999, 0.9999]
                    .iter()
                    .map(|&q| format!("{:.1}us", all.quantile(q) as f64 * us))
                    .collect::<Vec<_>>(),
            );
            json_indexes.push(format!("\"{}\":{}", kind.name(), hist.to_json(us)));
            idx.destroy();
        }
        json_mixes.push(format!(
            "\"{}\":{{{}}}",
            mix.short_name(),
            json_indexes.join(",")
        ));
    }

    let json = format!(
        "{{\"schema\":\"fig13_tail/v1\",\"keys\":{},\"ops\":{},\"threads\":{},\"dilation\":{},\"unit\":\"us_model_time\",\"mixes\":{{{}}}}}",
        scale.keys,
        scale.ops,
        threads,
        scale.dilation,
        json_mixes.join(",")
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/fig13_tail.json", &json) {
        Ok(()) => println!("wrote results/fig13_tail.json"),
        Err(e) => eprintln!("could not write results/fig13_tail.json: {e}"),
    }
}
