//! Figure 13: tail latency (p90-p99.99) per workload, all indexes, uniform
//! integer keys at high thread count.
//!
//! Paper result: PACTree's 99.99th percentile is up to 20x lower on
//! write-intensive workloads (no SMO ever blocks the critical path, and
//! slotted leaves amortize allocation); BzTree and PDL-ART spike from
//! allocation storms; FPTree's scans are worst (sort+filter per leaf).

use bench::{banner, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    pmem::numa::set_topology(2);
    let scale = Scale::from_env();
    let threads = scale.max_threads().min(56);
    banner("Figure 13", "tail latency, uniform integer keys", &scale);

    for mix in [Mix::A, Mix::B, Mix::C, Mix::E] {
        println!("-- {}", mix.short_name());
        row(
            "index",
            &[
                "p50".into(),
                "p90".into(),
                "p99".into(),
                "p99.9".into(),
                "p99.99".into(),
            ],
        );
        for kind in Kind::all() {
            let name = format!("fig13-{}-{}", mix.short_name(), kind.name());
            let idx = AnyIndex::create(kind, &name, KeySpace::Integer, &scale);
            driver::populate(&idx, KeySpace::Integer, scale.keys, 4);
            model::set_config(NvmModelConfig::optane_dilated(
                CoherenceMode::Snoop,
                scale.dilation,
            ));
            let w = Workload::uniform(mix, scale.keys);
            let cfg = DriverConfig {
                threads,
                ops: scale.ops,
                dilation: scale.dilation,
                ..Default::default()
            };
            let r = driver::run_workload(&idx, &w, KeySpace::Integer, &cfg);
            model::set_config(NvmModelConfig::disabled());
            row(
                kind.name(),
                &r.latency_us
                    .iter()
                    .map(|(_, v)| format!("{v:.1}us"))
                    .collect::<Vec<_>>(),
            );
            idx.destroy();
        }
    }
}
