//! Figure 14: single-threaded throughput, integer and string keys, all
//! workloads, all indexes.
//!
//! Paper result: PACTree is on par or up to 3x faster even without
//! concurrency — its optimistic version locks cost nothing uncontended,
//! while BzTree pays PMwCAS overheads and PDL-ART pays per-insert
//! allocation regardless of thread count.

use bench::{banner, mops, row, AnyIndex, Kind, Scale};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 14", "single-threaded throughput", &scale);

    for space in [KeySpace::Integer, KeySpace::String] {
        println!("-- {:?} keys", space);
        row(
            "index",
            &Mix::all()
                .iter()
                .map(|m| m.short_name().to_string())
                .collect::<Vec<_>>(),
        );
        let kinds: Vec<Kind> = if space.is_integer() {
            Kind::all().to_vec()
        } else {
            Kind::string_capable().to_vec()
        };
        for kind in kinds {
            let name = format!("fig14-{:?}-{}", space, kind.name());
            let idx = AnyIndex::create(kind, &name, space, &scale);
            driver::populate(&idx, space, scale.keys, 4);
            let mut cols = Vec::new();
            for mix in Mix::all() {
                model::set_config(NvmModelConfig::optane_dilated(
                    CoherenceMode::Snoop,
                    scale.dilation,
                ));
                let w = Workload::zipfian(mix, scale.keys);
                let cfg = DriverConfig {
                    threads: 1,
                    ops: scale.ops / 4,
                    dilation: scale.dilation,
                    ..Default::default()
                };
                let r = driver::run_workload(&idx, &w, space, &cfg);
                model::set_config(NvmModelConfig::disabled());
                cols.push(mops(r.mops));
            }
            row(kind.name(), &cols);
            idx.destroy();
        }
    }
}
