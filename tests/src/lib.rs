//! Host crate for the workspace-level integration tests in `tests/tests/`.
