//! Cross-index equivalence: every index in the workspace must agree with a
//! `BTreeMap` (and therefore with each other) on identical operation
//! sequences — the strongest cheap correctness check we have across five
//! very different implementations.

use std::collections::BTreeMap;
use std::sync::Arc;

use baselines::bztree::BzTree;
use baselines::fastfair::{FastFair, KeyMode};
use baselines::fptree::FpTree;
use pactree::{PacTree, PacTreeConfig};
use pdl_art::{PdlArt, PdlArtConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ycsb::RangeIndex;

const POOL: usize = 512 << 20;

fn indexes(tag: &str) -> Vec<Box<dyn RangeIndexObj>> {
    vec![
        Box::new(
            PacTree::create(PacTreeConfig::named(&format!("xidx-{tag}-pac")).with_pool_size(POOL))
                .unwrap(),
        ),
        Box::new(
            PdlArt::create(PdlArtConfig::named(&format!("xidx-{tag}-pdl")).with_pool_size(POOL))
                .unwrap(),
        ),
        Box::new(FastFair::create(&format!("xidx-{tag}-ff"), POOL, KeyMode::Integer).unwrap()),
        Box::new(BzTree::create(&format!("xidx-{tag}-bz"), POOL, KeyMode::Integer).unwrap()),
        Box::new(FpTree::create(&format!("xidx-{tag}-fp"), POOL).unwrap()),
    ]
}

/// Object-safe shim over the driver trait plus destruction.
trait RangeIndexObj {
    fn name(&self) -> &'static str;
    fn insert(&self, key: &[u8], value: u64);
    fn lookup(&self, key: &[u8]) -> Option<u64>;
    fn remove(&self, key: &[u8]) -> Option<u64>;
    fn scan_keys(&self, start: &[u8], count: usize) -> usize;
    fn finish(self: Box<Self>);
}

macro_rules! impl_obj {
    ($ty:ty) => {
        impl RangeIndexObj for Arc<$ty> {
            fn name(&self) -> &'static str {
                RangeIndex::name(self)
            }
            fn insert(&self, key: &[u8], value: u64) {
                RangeIndex::insert(self, key, value)
            }
            fn lookup(&self, key: &[u8]) -> Option<u64> {
                RangeIndex::lookup(self, key)
            }
            fn remove(&self, key: &[u8]) -> Option<u64> {
                RangeIndex::remove(self, key)
            }
            fn scan_keys(&self, start: &[u8], count: usize) -> usize {
                RangeIndex::scan(self, start, count)
            }
            fn finish(self: Box<Self>) {
                (*self).destroy()
            }
        }
    };
}
impl_obj!(PacTree);
impl_obj!(PdlArt);
impl_obj!(FastFair);
impl_obj!(BzTree);
impl_obj!(FpTree);

#[test]
fn all_indexes_agree_with_model() {
    let idxs = indexes("agree");
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0xABCD);

    for step in 0..8_000u64 {
        let k: u64 = rng.gen_range(1..4000);
        let kb = k.to_be_bytes();
        match rng.gen_range(0..10) {
            0..=5 => {
                model.insert(k, step);
                for idx in &idxs {
                    idx.insert(&kb, step);
                }
            }
            6..=7 => {
                let expect = model.remove(&k);
                for idx in &idxs {
                    assert_eq!(idx.remove(&kb), expect, "{} remove {k}", idx.name());
                }
            }
            _ => {
                let expect = model.get(&k).copied();
                for idx in &idxs {
                    assert_eq!(idx.lookup(&kb), expect, "{} lookup {k}", idx.name());
                }
            }
        }
    }
    // Final sweep: every key agrees; scans agree on counts.
    for (&k, &v) in &model {
        for idx in &idxs {
            assert_eq!(idx.lookup(&k.to_be_bytes()), Some(v), "{}", idx.name());
        }
    }
    for idx in &idxs {
        assert_eq!(
            idx.scan_keys(&0u64.to_be_bytes(), usize::MAX >> 1),
            model.len(),
            "{} full scan count",
            idx.name()
        );
    }
    for idx in idxs {
        idx.finish();
    }
}

#[test]
fn scan_windows_agree() {
    let idxs = indexes("scanwin");
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for i in 0..3000u64 {
        let k = i * 7 % 5000;
        model.insert(k, i);
        for idx in &idxs {
            idx.insert(&k.to_be_bytes(), i);
        }
    }
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let start: u64 = rng.gen_range(0..5000);
        let len: usize = rng.gen_range(1..100);
        let expect = model.range(start..).take(len).count();
        for idx in &idxs {
            assert_eq!(
                idx.scan_keys(&start.to_be_bytes(), len),
                expect,
                "{} scan from {start} len {len}",
                idx.name()
            );
        }
    }
    for idx in idxs {
        idx.finish();
    }
}
