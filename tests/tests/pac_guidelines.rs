//! Executable checks of the PAC guidelines' measurable claims (§3): the
//! model + index combinations must reproduce each *directional* finding the
//! paper derives its design from.

use pmem::model::{self, CoherenceMode, NvmModelConfig};
use pmem::stats;
use ycsb::{driver, DriverConfig, KeySpace, Mix, RangeIndex, Workload};

fn accounting() {
    model::set_config(NvmModelConfig::accounting());
}

fn off() {
    model::set_config(NvmModelConfig::disabled());
}

/// GA1: a trie lookup consumes less NVM read bandwidth than a B+tree lookup
/// for string keys (partial-key comparisons vs full-key probes).
#[test]
fn ga1_trie_reads_less_than_btree() {
    let keys = 30_000u64;
    let ff = baselines::fastfair::FastFair::create(
        "ga1-ff",
        512 << 20,
        baselines::fastfair::KeyMode::String,
    )
    .unwrap();
    let art =
        pdl_art::PdlArt::create(pdl_art::PdlArtConfig::named("ga1-art").with_pool_size(512 << 20))
            .unwrap();
    driver::populate(&ff, KeySpace::String, keys, 2);
    driver::populate(&art, KeySpace::String, keys, 2);

    let w = Workload::uniform(Mix::C, keys);
    let cfg = DriverConfig {
        threads: 2,
        ops: 20_000,
        ..Default::default()
    };
    accounting();
    let r_ff = driver::run_workload(&ff, &w, KeySpace::String, &cfg);
    let r_art = driver::run_workload(&art, &w, KeySpace::String, &cfg);
    off();
    assert!(
        r_ff.stats.media_read_bytes > r_art.stats.media_read_bytes * 3 / 2,
        "B+tree should read substantially more: ff={} art={}",
        r_ff.stats.media_read_bytes,
        r_art.stats.media_read_bytes
    );
    ff.destroy();
    art.destroy();
}

/// GA2: FastFair's reader-visible lock state generates NVM write traffic on
/// a read-only workload; PACTree's optimistic version locks generate none.
#[test]
fn ga2_reader_locks_cost_write_bandwidth() {
    let keys = 10_000u64;
    let ff = baselines::fastfair::FastFair::create(
        "ga2-ff",
        256 << 20,
        baselines::fastfair::KeyMode::Integer,
    )
    .unwrap();
    let pac = pactree::PacTree::create(
        pactree::PacTreeConfig::named("ga2-pac").with_pool_size(256 << 20),
    )
    .unwrap();
    driver::populate(&ff, KeySpace::Integer, keys, 2);
    driver::populate(&pac, KeySpace::Integer, keys, 2);
    // Let the async updater drain before measuring.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let w = Workload::uniform(Mix::C, keys);
    let cfg = DriverConfig {
        threads: 2,
        ops: 20_000,
        ..Default::default()
    };
    accounting();
    let r_ff = driver::run_workload(&ff, &w, KeySpace::Integer, &cfg);
    let r_pac = driver::run_workload(&pac, &w, KeySpace::Integer, &cfg);
    off();
    assert!(
        r_ff.stats.media_write_bytes > 1_000_000,
        "FastFair readers should dirty lock lines: {}",
        r_ff.stats.media_write_bytes
    );
    assert!(
        r_pac.stats.media_write_bytes < r_ff.stats.media_write_bytes / 10,
        "PACTree readers must not write: pac={} ff={}",
        r_pac.stats.media_write_bytes,
        r_ff.stats.media_write_bytes
    );
    ff.destroy();
    pac.destroy();
}

/// GA3: per-insert allocation counts — PDL-ART and BzTree allocate per
/// insert; PACTree and FastFair amortize over node capacity.
#[test]
fn ga3_allocation_profiles() {
    let n = 5_000u64;
    let alloc_per_op = |name: &str, f: &dyn Fn(u64)| -> f64 {
        let before = stats::global().snapshot();
        for i in 0..n {
            f(i);
        }
        let d = stats::global().snapshot().since(&before);
        let per_op = d.allocs as f64 / n as f64;
        println!("{name}: {per_op:.3} allocs/op");
        per_op
    };

    let pac = pactree::PacTree::create(
        pactree::PacTreeConfig::named("ga3-pac").with_pool_size(256 << 20),
    )
    .unwrap();
    let pac_rate = alloc_per_op("pactree", &|i| {
        pac.insert(&i.to_be_bytes(), i);
    });
    pac.destroy();

    let art =
        pdl_art::PdlArt::create(pdl_art::PdlArtConfig::named("ga3-art").with_pool_size(256 << 20))
            .unwrap();
    let art_rate = alloc_per_op("pdl-art", &|i| {
        art.insert(&i.to_be_bytes(), i);
    });
    art.destroy();

    let bz = baselines::bztree::BzTree::create(
        "ga3-bz",
        512 << 20,
        baselines::fastfair::KeyMode::Integer,
    )
    .unwrap();
    let bz_rate = alloc_per_op("bztree", &|i| {
        bz.insert(&i.to_be_bytes(), i);
    });
    bz.destroy();

    assert!(art_rate >= 0.9, "PDL-ART allocates a leaf per insert");
    assert!(bz_rate >= 0.9, "BzTree allocates a descriptor per insert");
    assert!(
        pac_rate < art_rate / 3.0,
        "PACTree amortizes allocation: {pac_rate} vs {art_rate}"
    );
}

/// GA4: BzTree's PMwCAS-heavy insert flushes far more than PACTree's.
#[test]
fn ga4_flushes_per_insert() {
    let n = 3_000u64;
    let flushes = |f: &dyn Fn(u64)| -> f64 {
        accounting();
        let before = stats::global().snapshot();
        for i in 0..n {
            f(i);
        }
        let d = stats::global().snapshot().since(&before);
        off();
        d.flushes as f64 / n as f64
    };

    let pac = pactree::PacTree::create(
        pactree::PacTreeConfig::named("ga4-pac").with_pool_size(256 << 20),
    )
    .unwrap();
    let pac_f = flushes(&|i| {
        pac.insert(&i.to_be_bytes(), i);
    });
    pac.destroy();

    let bz = baselines::bztree::BzTree::create(
        "ga4-bz",
        512 << 20,
        baselines::fastfair::KeyMode::Integer,
    )
    .unwrap();
    let bz_f = flushes(&|i| {
        bz.insert(&i.to_be_bytes(), i);
    });
    bz.destroy();

    println!("flushes/insert: pactree {pac_f:.1}, bztree {bz_f:.1}");
    assert!(bz_f >= 10.0, "BzTree flush storm: {bz_f}");
    assert!(
        pac_f < bz_f / 2.0,
        "PACTree flushes less: {pac_f} vs {bz_f}"
    );
}

/// FH5: directory coherence turns remote reads into media writes.
#[test]
fn fh5_directory_meltdown() {
    pmem::numa::set_topology(2);
    let pool =
        pmem::pool::PmemPool::create(pmem::pool::PoolConfig::volatile("fh5", 32 << 20).on_node(1))
            .unwrap();
    let mut cfg = NvmModelConfig::accounting();
    cfg.coherence = CoherenceMode::Directory;
    cfg.cpu_cache_lines = 0;
    model::set_config(cfg);
    pmem::numa::pin_thread(0);
    let before = pool.stats().snapshot();
    for i in 0..10_000u64 {
        model::on_read(pool.id(), (i * 64) % (32 << 20), 64);
    }
    let d = pool.stats().snapshot().since(&before);
    off();
    assert_eq!(d.directory_write_bytes, 10_000 * 64);
    assert!(d.media_read_bytes > 0);
    pmem::pool::destroy_pool(pool.id());
}

/// GC3: HTM aborts grow with data-set size.
#[test]
fn gc3_htm_aborts_grow_with_data() {
    let rate = |keys: u64, name: &str| -> f64 {
        let fp = baselines::fptree::FpTree::create(name, 512 << 20).unwrap();
        driver::populate(&fp, KeySpace::Integer, keys, 2);
        fp.htm.stats.reset();
        let w = Workload::uniform(Mix::ReadInsert, keys);
        let cfg = DriverConfig {
            threads: 4,
            ops: 10_000,
            ..Default::default()
        };
        let _ = driver::run_workload(&fp, &w, KeySpace::Integer, &cfg);
        let rate = fp.htm.stats.aborts_per_op();
        fp.destroy();
        rate
    };
    let small = rate(5_000, "gc3-small");
    let large = rate(500_000, "gc3-large");
    println!("aborts/op: small {small:.3}, large {large:.3}");
    assert!(
        large > small * 2.0,
        "aborts must grow with data size: {small} -> {large}"
    );
}
