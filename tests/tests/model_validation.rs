//! Validation of the NVM performance model against its specification:
//! XPLine accounting, write combining, bandwidth asymmetry, dilation, and
//! eADR semantics. These are the knobs every figure depends on.

use std::time::Instant;

use pmem::model::{self, CoherenceMode, NvmModelConfig};
use pmem::pool::{destroy_pool, PmemPool, PoolConfig};
use pmem::{persist, XPLINE};

fn fresh_pool(name: &str) -> std::sync::Arc<PmemPool> {
    PmemPool::create(PoolConfig::volatile(name, 16 << 20)).unwrap()
}

#[test]
fn dilation_scales_flush_latency() {
    let pool = fresh_pool("mv-dilate");
    let p = pool.allocator().alloc(64).unwrap();

    let time_flushes = |dilation: f64, n: u64| -> u128 {
        let mut cfg = NvmModelConfig::optane_dilated(CoherenceMode::Snoop, dilation);
        cfg.throttle = false;
        model::set_config(cfg);
        let t0 = Instant::now();
        for _ in 0..n {
            persist::persist(p.as_ptr(), 64);
        }
        let e = t0.elapsed().as_micros();
        model::set_config(NvmModelConfig::disabled());
        e
    };

    // 500 flushes at 200ns model latency: ~100us at 1x, ~51ms at 512x.
    let slow = time_flushes(512.0, 500);
    assert!(
        slow >= 40_000,
        "512x dilation should cost >=40ms for 500 flushes, got {slow}us"
    );
    destroy_pool(pool.id());
}

#[test]
fn eadr_removes_flush_latency_but_not_write_traffic() {
    let pool = fresh_pool("mv-eadr");
    let p = pool.allocator().alloc(4096).unwrap();

    let mut adr = NvmModelConfig::optane_dilated(CoherenceMode::Snoop, 256.0);
    adr.throttle = false;
    let mut eadr = adr.clone();
    eadr.eadr = true;

    // ADR: flushes sleep.
    model::set_config(adr);
    let t0 = Instant::now();
    for i in 0..200u64 {
        persist::persist(unsafe { p.as_ptr().add((i as usize * 64) % 4096) }, 64);
    }
    let adr_time = t0.elapsed().as_micros();
    let adr_writes = pool.stats().snapshot().media_write_bytes;

    // eADR: same traffic, near-zero synchronous cost.
    pool.stats().reset();
    model::set_config(eadr);
    let t0 = Instant::now();
    for i in 0..200u64 {
        persist::persist(unsafe { p.as_ptr().add((i as usize * 64) % 4096) }, 64);
    }
    let eadr_time = t0.elapsed().as_micros();
    let eadr_writes = pool.stats().snapshot().media_write_bytes;
    model::set_config(NvmModelConfig::disabled());

    assert!(
        eadr_time * 5 < adr_time,
        "eADR flushes must be much cheaper: {eadr_time}us vs {adr_time}us"
    );
    assert!(eadr_writes > 0, "eADR still consumes write bandwidth");
    assert_eq!(adr_writes, eadr_writes, "same media traffic either way");
    destroy_pool(pool.id());
}

#[test]
fn write_combining_vs_random_amplification() {
    let pool = fresh_pool("mv-wc");
    model::set_config(NvmModelConfig::accounting());

    // Sequential: 64 consecutive lines = 16 XPLines of traffic.
    let before = pool.stats().snapshot();
    for i in 0..64u64 {
        model::on_flush(pool.id(), 65536 + i * 64, 64);
    }
    let seq = pool.stats().snapshot().since(&before).media_write_bytes;

    // Random: 64 scattered lines = 64 XPLines (4x amplification).
    let before = pool.stats().snapshot();
    for i in 0..64u64 {
        model::on_flush(pool.id(), (i * 37 % 256) * 4096, 64);
    }
    let rnd = pool.stats().snapshot().since(&before).media_write_bytes;
    model::set_config(NvmModelConfig::disabled());

    assert_eq!(seq, 16 * XPLINE as u64);
    assert!(rnd >= 3 * seq, "random writes amplify: {rnd} vs {seq}");
    destroy_pool(pool.id());
}

#[test]
fn read_write_bandwidth_asymmetry_configured() {
    let cfg = NvmModelConfig::optane(CoherenceMode::Snoop);
    assert!(
        cfg.read_bw >= 3 * cfg.write_bw,
        "Optane's 3-5x read/write asymmetry must be modeled"
    );
    let low = NvmModelConfig::low_bandwidth();
    assert!(
        low.read_bw <= cfg.read_bw / 2,
        "low-bandwidth machine is ~3x slower"
    );
}

#[test]
fn dirty_traffic_counts_without_latency() {
    // GA2's reader-lock traffic: on_dirty consumes write budget but sleeps
    // nothing.
    let pool = fresh_pool("mv-dirty");
    model::set_config(NvmModelConfig::accounting());
    let before = pool.stats().snapshot();
    let t0 = Instant::now();
    for i in 0..1000u64 {
        model::on_dirty(pool.id(), (i * 7 % 64) * 4096, 8);
    }
    let elapsed = t0.elapsed().as_millis();
    let d = pool.stats().snapshot().since(&before);
    model::set_config(NvmModelConfig::disabled());
    assert!(d.media_write_bytes > 0, "dirty lines reach the media");
    assert_eq!(d.flushes, 0, "no flush instructions were issued");
    assert!(elapsed < 500, "accounting mode must not sleep");
    destroy_pool(pool.id());
}

#[test]
fn cpu_cache_filters_repeated_reads() {
    let pool = fresh_pool("mv-cache");
    model::set_config(NvmModelConfig::accounting());
    let before = pool.stats().snapshot();
    for _ in 0..100 {
        model::on_read(pool.id(), 8192, 256);
    }
    let d = pool.stats().snapshot().since(&before);
    model::set_config(NvmModelConfig::disabled());
    // First read misses (one XPLine per 64B line of the 256B range); the 99
    // repeats hit the simulated CPU cache.
    assert!(
        d.media_read_bytes <= 4 * XPLINE as u64,
        "repeats must be cache hits: {}",
        d.media_read_bytes
    );
    destroy_pool(pool.id());
}
