//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the macro/builder API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::bench_function`, `Bencher::iter`, `BenchmarkId`) with a
//! straightforward warm-up + timed-samples loop that prints mean and
//! median ns/iter. No plots, no statistics beyond that.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching criterion's `black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (n, m, w) = (self.sample_size, self.measurement_time, self.warm_up_time);
        run_bench(&id.into().0, n, m, w, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier accepted by `bench_function`.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.0)
    }
}

/// `function_name/parameter` style id.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the closure under measurement; `iter` runs the timing loop.
pub struct Bencher {
    iters_per_sample: u64,
    /// ns/iter of each measured sample.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
        self.samples.push(ns);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    // Warm-up: also calibrates iterations per sample.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up_time {
        let mut b = Bencher { iters_per_sample: 1, samples: Vec::new() };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_up_time.as_nanos() as f64 / warm_iters.max(1) as f64;
    let budget = measurement_time.as_nanos() as f64 / sample_size.max(1) as f64;
    let iters_per_sample = ((budget / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

    let mut b = Bencher { iters_per_sample, samples: Vec::new() };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, c| a.partial_cmp(c).expect("non-NaN timing"));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let mut line = String::new();
    let _ = write!(
        line,
        "{label:<40} median {median:>12.1} ns/iter   mean {mean:>12.1} ns/iter   ({} samples x {} iters)",
        sorted.len(),
        iters_per_sample
    );
    println!("{line}");
}

/// Declares a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        g.bench_function(BenchmarkId::new("inc", 1), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
