//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `Rng` (`gen`, `gen_bool`, `gen_range`), `SeedableRng`
//! (`seed_from_u64`) and `rngs::StdRng` backed by xoshiro256** seeded via
//! splitmix64 — deterministic for a given seed, which is all the workspace's
//! seeded tests and workload generators rely on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type that can be produced uniformly at random ([`Rng::gen`]).
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range random values can be drawn from ([`Rng::gen_range`]).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// User-facing random value generation, `rand 0.8` style.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(t)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 (same construction the reference
    /// xoshiro implementation recommends).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs one generator quality tier.
    pub type SmallRng = StdRng;
}

/// A fresh time-seeded generator.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: u64 = rng.gen_range(1..=100);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
