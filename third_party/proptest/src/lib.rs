//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the `proptest!` macro with `#![proptest_config(...)]`, `any::<T>()`,
//! integer-range strategies, tuple strategies, `collection::{vec,
//! btree_set}`, and `prop_assert{,_eq}!`. Generation is deterministic (the
//! seed is derived from the test's module path and name) and there is no
//! shrinking — a failing case panics with the generated values visible in
//! the assertion message.

pub mod test_runner {
    /// Deterministic splitmix64 generator used for all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test's fully qualified name.
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn usize_below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }
    }

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe producing random values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy behind [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy
        for (A, B, C, D, E)
    {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// `any::<T>()`: the full-range strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { start: n, end: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.usize_below(self.end - self.start)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element`; duplicates may make the result
    /// smaller than the drawn size (same tolerance as real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test entry macro: each `fn name(arg in strategy, ...)` body
/// runs `config.cases` times with freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vecs_in_bounds(
            v in crate::collection::vec(any::<u8>(), 0..12),
            n in 1..4u8,
        ) {
            prop_assert!(v.len() < 12);
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn sets_are_sets(s in crate::collection::btree_set(0..50u64, 1..30)) {
            let v: Vec<_> = s.iter().collect();
            let mut w = v.clone();
            w.dedup();
            prop_assert_eq!(v, w);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
