//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! subset of the `parking_lot` API the workspace uses is re-implemented here
//! over `std::sync` primitives and wired in via `[patch.crates-io]`.
//! Semantics match `parking_lot` where the workspace relies on them:
//! no lock poisoning (a panicked holder does not wedge the lock), guards
//! deref to the protected data, and `Condvar` works with this `Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        let r1 = l.read();
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_none());
        drop(r1);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        h.join().unwrap();
    }
}
