//! Quickstart: create a PACTree, do point and range operations.
//!
//! ```sh
//! cargo run -p pactree-examples --bin quickstart
//! ```

use pactree::{PacTree, PacTreeConfig};

fn main() {
    // A PACTree lives in a set of emulated persistent-memory pools: one for
    // the trie search layer, one per NUMA node for the data layer, one for
    // the SMO logs.
    let tree = PacTree::create(PacTreeConfig::named("quickstart")).expect("create index");

    // Point operations. Keys are byte strings ordered lexicographically;
    // values are 8-byte words (commonly pointers into your own heap).
    tree.insert(b"apple", 1).unwrap();
    tree.insert(b"banana", 2).unwrap();
    tree.insert(b"cherry", 3).unwrap();
    assert_eq!(tree.lookup(b"banana"), Some(2));

    // Updates go through the paper's out-of-place slot protocol.
    let old = tree.update(b"banana", 20).unwrap();
    assert_eq!(old, Some(2));

    // Integer keys: encode big-endian so byte order equals numeric order.
    for i in 0..1000u64 {
        tree.insert(&i.to_be_bytes(), i * i).unwrap();
    }

    // Ordered range scan across data nodes.
    let first_five = tree.scan(&10u64.to_be_bytes(), 5);
    println!("five keys from 10:");
    for pair in &first_five {
        let k = u64::from_be_bytes(pair.key.as_slice().try_into().unwrap());
        println!("  {k} -> {}", pair.value);
    }

    // Removal.
    assert_eq!(tree.remove(b"apple").unwrap(), Some(1));
    assert_eq!(tree.lookup(b"apple"), None);

    println!(
        "tree holds {} pairs in {} data nodes; splits so far: {}",
        tree.count_pairs(),
        tree.node_count(),
        tree.stats()
            .splits
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    tree.destroy();
}
