//! A persistent key-value store built on PACTree — the kind of storage
//! engine the paper's introduction motivates (key-value stores and database
//! systems are the primary consumers of persistent range indexes).
//!
//! The index maps keys to persistent pointers of out-of-line *values* kept
//! in the same pool set, so the whole store survives crashes:
//!
//! ```sh
//! cargo run -p pactree-examples --bin kvstore
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pactree::{PacTree, PacTreeConfig};
use pmem::persist;
use pmem::pool::{self, PmemPool, PoolConfig};
use pmem::pptr::PmPtr;

/// A tiny crash-consistent value heap: length-prefixed byte blobs.
struct ValueHeap {
    pool: Arc<PmemPool>,
}

impl ValueHeap {
    fn write(&self, bytes: &[u8]) -> PmPtr<u8> {
        let blob = self
            .pool
            .allocator()
            .alloc(8 + bytes.len())
            .expect("alloc value");
        // SAFETY: fresh allocation of 8 + len bytes.
        unsafe {
            (blob.as_mut_ptr() as *mut u64).write(bytes.len() as u64);
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), blob.as_mut_ptr().add(8), bytes.len());
        }
        persist::persist_range_fenced(blob.as_ptr(), 8 + bytes.len());
        blob
    }

    fn read(&self, ptr: PmPtr<u8>) -> Vec<u8> {
        // SAFETY: blobs are immutable once written and persist until the
        // store drops them.
        unsafe {
            let len = (ptr.as_ptr() as *const u64).read() as usize;
            std::slice::from_raw_parts(ptr.as_ptr().add(8), len).to_vec()
        }
    }
}

/// The store: PACTree index + value heap.
struct KvStore {
    index: Arc<PacTree>,
    values: ValueHeap,
}

impl KvStore {
    fn open(name: &str) -> KvStore {
        let index =
            PacTree::create(PacTreeConfig::named(&format!("{name}-idx"))).expect("create index");
        let pool = PmemPool::create(PoolConfig::volatile(&format!("{name}-vals"), 256 << 20))
            .expect("create value pool");
        KvStore {
            index,
            values: ValueHeap { pool },
        }
    }

    fn put(&self, key: &str, value: &str) {
        let blob = self.values.write(value.as_bytes());
        self.index
            .insert(key.as_bytes(), blob.raw())
            .expect("index insert");
    }

    fn get(&self, key: &str) -> Option<String> {
        let raw = self.index.lookup(key.as_bytes())?;
        Some(String::from_utf8_lossy(&self.values.read(PmPtr::from_raw(raw))).into_owned())
    }

    fn delete(&self, key: &str) -> bool {
        self.index.remove(key.as_bytes()).expect("remove").is_some()
    }

    /// Ordered prefix listing, powered by the range scan.
    fn list_prefix(&self, prefix: &str, limit: usize) -> Vec<(String, String)> {
        self.index
            .scan(prefix.as_bytes(), limit)
            .into_iter()
            .take_while(|p| p.key.starts_with(prefix.as_bytes()))
            .map(|p| {
                (
                    String::from_utf8_lossy(&p.key).into_owned(),
                    String::from_utf8_lossy(&self.values.read(PmPtr::from_raw(p.value)))
                        .into_owned(),
                )
            })
            .collect()
    }

    fn close(self) {
        let vp = self.values.pool.id();
        self.index.destroy();
        pool::destroy_pool(vp);
    }
}

fn main() {
    let store = KvStore::open("example-kv");

    // A user-profile table, the classic YCSB shape.
    for i in 0..2000 {
        store.put(&format!("user:{i:05}:name"), &format!("User Number {i}"));
        store.put(
            &format!("user:{i:05}:email"),
            &format!("user{i}@example.com"),
        );
    }
    store.put("config:max_connections", "512");

    println!("user 42's name:  {:?}", store.get("user:00042:name"));
    println!("user 42's email: {:?}", store.get("user:00042:email"));

    println!("profile fields of user 1337:");
    for (k, v) in store.list_prefix("user:01337:", 10) {
        println!("  {k} = {v}");
    }

    assert!(store.delete("user:00042:email"));
    assert_eq!(store.get("user:00042:email"), None);

    println!(
        "store holds {} index entries across {} data nodes (splits handled asynchronously: {} SMOs replayed)",
        store.index.count_pairs(),
        store.index.node_count(),
        store.index.stats().smo_replayed.load(Ordering::Relaxed),
    );
    store.close();
}
