//! Shared nothing: this crate exists to host the runnable example binaries
//! (`quickstart`, `kvstore`, `crash_recovery`, `numa_bandwidth`).
