//! NUMA and bandwidth demonstration (paper FH5, GS2): run the same
//! read-heavy workload with the directory and snoop coherence protocols and
//! watch the directory protocol burn write bandwidth on remote reads.
//!
//! ```sh
//! cargo run --release -p pactree-examples --bin numa_bandwidth
//! ```

use pactree::{PacTree, PacTreeConfig};
use pmem::model::{self, CoherenceMode, NvmModelConfig};
use pmem::stats;
use ycsb::{driver, DriverConfig, KeySpace, Mix, Workload};

fn main() {
    // Two logical NUMA nodes; PACTree puts one data pool on each (GS2) and
    // the driver spreads worker threads round-robin.
    pmem::numa::set_topology(2);
    let keys = 50_000u64;

    let tree = PacTree::create(
        PacTreeConfig::named("example-numa")
            .with_numa_pools(2)
            .with_pool_size(256 << 20),
    )
    .expect("create");
    driver::populate(&tree, KeySpace::Integer, keys, 4);

    for coherence in [CoherenceMode::Directory, CoherenceMode::Snoop] {
        let mut cfg = NvmModelConfig::accounting();
        cfg.coherence = coherence;
        model::set_config(cfg);
        let before = stats::global().snapshot();

        let w = Workload::zipfian(Mix::C, keys);
        let dcfg = DriverConfig {
            threads: 4,
            ops: 40_000,
            ..Default::default()
        };
        let r = driver::run_workload(&tree, &w, KeySpace::Integer, &dcfg);
        let d = stats::global().snapshot().since(&before);
        model::set_config(NvmModelConfig::disabled());

        println!(
            "{coherence:?}: read-only workload issued {:.1} MB media reads and {:.1} MB *writes* ({} flushes) — {:.3} Mops/s",
            d.media_read_bytes as f64 / 1e6,
            (d.media_write_bytes + d.directory_write_bytes) as f64 / 1e6,
            d.flushes,
            r.mops,
        );
    }
    println!(
        "-- the directory protocol's remote reads update coherence state ON the NVM media (FH5);"
    );
    println!("   snoop mode removes that write traffic entirely, which is why the paper's testbed uses it.");
    tree.destroy();
}
