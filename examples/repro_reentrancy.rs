// repro: with_pool + crash-consistent free reentrancy
use pmem::pool::{self, PmemPool, PoolConfig};

fn main() {
    let p = PmemPool::create(PoolConfig::durable("repro", 1 << 20)).unwrap();
    let ptr = p.allocator().alloc(64).unwrap();
    let id = p.id();
    // mirrors pactree's deferred free: tree.rs remove/retire paths
    pool::with_pool(id, |pl| pl.allocator().free(ptr, 64));
    println!("no panic");
}
