//! Crash-recovery walkthrough (paper §5.9, §6.8): write through PACTree's
//! durable configuration, pull the (virtual) power plug, recover, verify.
//!
//! ```sh
//! cargo run -p pactree-examples --bin crash_recovery
//! ```

use pactree::{PacTree, PacTreeConfig};
use pmem::crash;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Durable config: media images for crash simulation + crash-consistent
    // allocation. Everything acknowledged before the crash must survive.
    let mut cfg = PacTreeConfig::durable("example-crash");
    cfg.numa_pools = 1;
    cfg.pool_size = 128 << 20;

    let tree = PacTree::create(cfg.clone()).expect("create");
    let mut rng = StdRng::seed_from_u64(2026);
    let mut expected = std::collections::BTreeMap::new();

    println!("writing 5000 acknowledged operations...");
    for _ in 0..5000 {
        let k: u64 = rng.gen_range(0..10_000);
        if rng.gen_bool(0.85) {
            let v: u64 = rng.gen();
            tree.insert(&k.to_be_bytes(), v).unwrap();
            expected.insert(k, v);
        } else {
            tree.remove(&k.to_be_bytes()).unwrap();
            expected.remove(&k);
        }
    }
    println!(
        "index: {} pairs, {} data nodes, {} pending async SMOs",
        tree.count_pairs(),
        tree.node_count(),
        tree.pending_smo_count()
    );

    // Pull the plug: everything not explicitly persisted is lost; some
    // cache lines were spontaneously evicted first, like real hardware.
    println!("simulating power failure (pools remount from media)...");
    for p in tree.pools() {
        crash::evict_random_lines(&p, 128, &mut rng);
    }
    let pools = tree.pools();
    tree.stop_updater();
    crash::crash_all(&pools, true); // remount at *different* addresses
    drop(tree);

    // Recovery: generation bump voids all stale locks, allocation logs free
    // leaked blocks, pending SMO log entries replay idempotently.
    println!("recovering...");
    let tree = PacTree::recover(cfg).expect("recover");
    assert_eq!(tree.pending_smo_count(), 0);

    let mut verified = 0;
    for (k, v) in &expected {
        assert_eq!(
            tree.lookup(&k.to_be_bytes()),
            Some(*v),
            "acknowledged key {k} must survive"
        );
        verified += 1;
    }
    tree.check_invariants();
    println!("all {verified} acknowledged keys survived; index consistent and writable");

    tree.insert(b"written-after-recovery", 1).unwrap();
    assert_eq!(tree.lookup(b"written-after-recovery"), Some(1));
    tree.destroy();
}
