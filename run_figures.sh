#!/usr/bin/env bash
# Reproduces every figure/table of the paper's evaluation at the scale given
# by PAC_* environment variables (see README). Results land in results/.
set -u
SCALE_ARGS="${PAC_KEYS:=60000} ${PAC_OPS:=20000} ${PAC_THREADS:=16} ${PAC_DILATION:=192}"
export PAC_KEYS PAC_OPS PAC_THREADS PAC_DILATION
echo "scale: keys=$PAC_KEYS ops=$PAC_OPS threads<=$PAC_THREADS dilation=$PAC_DILATION"
mkdir -p results
for fig in fig02_coherence fig03_allocator fig04_lookup_bw fig05_scan_bw \
           fig06_htm fig09_ycsb_string fig10_ycsb_int fig11_low_bw \
           fig12_factor fig13_tail fig14_single fig15_skew \
           exp_jump_distance exp_directory_traffic exp_alloc_share exp_eadr \
           exp_recovery_time; do
  echo "=== running $fig"
  cargo run -q --release -p bench --bin "$fig" > "results/$fig.txt" 2>&1 || echo "  FAILED ($fig)"
done
echo "=== running exp_recovery (PAC_CRASH_ROUNDS=${PAC_CRASH_ROUNDS:=25})"
export PAC_CRASH_ROUNDS
cargo run -q --release -p bench --bin exp_recovery > results/exp_recovery.txt 2>&1 || echo "  FAILED (exp_recovery)"
echo "=== running observability (obsv-report, bench_obsv_overhead)"
cargo run -q --release -p bench --bin obsv-report > results/obsv_report.txt 2>&1 || echo "  FAILED (obsv-report)"
cargo run -q --release -p bench --bin bench_obsv_overhead > results/bench_obsv_overhead.txt 2>&1 || echo "  FAILED (bench_obsv_overhead)"
echo "=== running SIMD kernel A/B (bench-node-search)"
cargo run -q --release -p bench --bin bench-node-search > results/bench_node_search.txt 2>&1 || echo "  FAILED (bench-node-search)"
python3 scripts/validate_obsv_json.py results/obsv_report.json results/fig13_tail.json results/bench_node_search.json || echo "  FAILED (obsv JSON validation)"
echo "=== running service mode (pacsrv-bench)"
cargo run -q --release -p bench --bin pacsrv-bench > results/pacsrv_bench.txt 2>&1 || echo "  FAILED (pacsrv-bench)"

echo "=== running versioning layer (mvcc-bench)"
cargo run -q --release -p bench --bin mvcc-bench > results/mvcc_bench.txt 2>&1 || echo "  FAILED (mvcc-bench)"
echo "done; see results/"
